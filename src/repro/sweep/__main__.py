"""CLI entry point: ``python -m repro.sweep``.

Subcommands:

* ``list``    — enumerate the sweep's jobs, their keys and cache state
* ``run``     — execute the sweep (``--jobs N`` workers, cached results
  are reused by default so an interrupted run resumes where it stopped;
  ``--force`` recomputes everything)
* ``status``  — cached/missing breakdown for the sweep + cache totals
* ``clean``   — delete every cache entry

Examples::

    python -m repro.sweep run --jobs 4                  # full Fig. 10 sweep
    python -m repro.sweep run --jobs 2 --benchmarks HS,SC --resume
    python -m repro.sweep run --jobs 4 --batch 8        # fixed 8-job chunks
    python -m repro.sweep run --screen surrogate        # hybrid sweep: only
                                                        # near/past-knee points
    python -m repro.sweep list --mechanisms baseline,dr
    python -m repro.sweep status
    python -m repro.sweep clean

The sweep selection flags (``--benchmarks``, ``--n-mixes``,
``--mechanisms``, ``--cycles``, ``--warmup``, ``--backend``) describe the same
(GPU benchmark x CPU co-runner x mechanism) cross product Figures 10-14
read; defaults regenerate the Fig. 10 sweep.  Window lengths default to
``REPRO_CYCLES``/``REPRO_WARMUP``.  The cache lives in ``--cache-dir``
(default: ``$REPRO_SWEEP_CACHE`` or ``.repro_sweep_cache``).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from typing import List, Optional

from repro.cli import (
    add_backend_option,
    add_batch_option,
    add_deprecated_alias,
    add_format_option,
    add_jobs_option,
    add_seed_option,
    add_window_options,
    backend_error_exit,
    emit,
)
from repro.sim.engines import BackendError
from repro.sweep.cache import ResultCache, default_cache_dir
from repro.sweep.jobs import JobSpec, mechanism_jobs
from repro.sweep.runner import JobOutcome, SweepRunner


def _specs_from_args(args) -> List[JobSpec]:
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    if benchmarks is None and args.subset:
        from repro.experiments.common import default_benchmarks

        benchmarks = default_benchmarks(subset=args.subset)
    mechanisms = args.mechanisms.split(",") if args.mechanisms else None
    specs = mechanism_jobs(
        benchmarks=benchmarks,
        n_mixes=args.n_mixes,
        cycles=args.cycles,
        warmup=args.warmup,
        mechanisms=mechanisms,
        backend=getattr(args, "backend", None),
    )
    if getattr(args, "seed", None) is not None:
        # a different seed is a different simulation (and cache key):
        # rebuild each spec around the reseeded config
        specs = [
            JobSpec.make(
                {**json.loads(s.config_json), "seed": args.seed},
                s.gpu,
                s.cpu,
                cycles=s.cycles,
                warmup=s.warmup,
                kernel_flush_interval=s.kernel_flush_interval,
                label=s.label,
                faults=s.faults,
                backend=s.backend,
            )
            for s in specs
        ]
    return specs


def _cache_from_args(args) -> ResultCache:
    return ResultCache(args.cache_dir or default_cache_dir())


def _progress_log_path(args, cache: ResultCache) -> str:
    if getattr(args, "progress_log", None):
        return args.progress_log
    return str(cache.root / "progress.jsonl")


class ProgressLog:
    """Append-only JSONL log of sweep-run progress.

    One ``start`` marker per ``sweep run``, one ``job`` line per finished
    job (key, state, wall time, attempts) flushed as it lands, and a
    final ``end``/``interrupted`` marker — so a long sweep is observable
    from another shell (``sweep status`` summarises the latest segment)
    and a crashed one leaves evidence of where it stopped.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        # the default location is inside the cache dir, which a fresh
        # run has not created yet
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self._fh = open(path, "a")

    def write(self, rec: dict) -> None:
        rec = {"ts": round(time.time(), 3), **rec}
        self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def _read_progress(path: str) -> List[dict]:
    """Records of the most recent run segment (after the last ``start``)."""
    segment: List[dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a crashed writer
                if rec.get("rec") == "start":
                    segment = [rec]
                else:
                    segment.append(rec)
    except OSError:
        return []
    return segment


def _summarize_progress(path: str) -> None:
    segment = _read_progress(path)
    if not segment:
        print(f"progress: no progress log at {path}")
        return
    start = segment[0] if segment[0].get("rec") == "start" else {}
    jobs = [r for r in segment if r.get("rec") == "job"]
    end = next(
        (r for r in segment if r.get("rec") in ("end", "interrupted")), None
    )
    total = start.get("total", max((r.get("total", 0) for r in jobs), default=0))
    counts: dict = {}
    retried = 0
    wall = 0.0
    for r in jobs:
        counts[r.get("status", "?")] = counts.get(r.get("status", "?"), 0) + 1
        if r.get("attempts", 1) > 1:
            retried += 1
        wall += r.get("wall_time_s", 0.0)
    simulated = counts.get("ok", 0)
    state = "running"
    if end is not None:
        state = ("finished in {:.1f}s".format(end.get("wall_time_s", 0.0))
                 if end["rec"] == "end" else "interrupted")
    by_status = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    print(f"last run: {len(jobs)}/{total} job(s) done ({by_status or 'none'})"
          f" — {state}")
    if simulated:
        print(f"          {wall:.1f}s simulation time, "
              f"{wall / simulated:.2f}s/job, {retried} job(s) retried")


def _cmd_list(args) -> int:
    specs = _specs_from_args(args)
    cache = _cache_from_args(args)
    print(f"{len(specs)} job(s); cache: {cache.root}")
    for spec in specs:
        state = "cached" if cache.contains(spec.key()) else "missing"
        print(f"  {spec.key()[:16]}  {state:7s}  {spec.describe()}"
              f"  cycles={spec.cycles} warmup={spec.warmup}")
    return 0


def _cmd_status(args) -> int:
    specs = _specs_from_args(args)
    cache = _cache_from_args(args)
    cached = sum(1 for s in specs if cache.contains(s.key()))
    total_entries = sum(1 for _ in cache.keys())
    if getattr(args, "format", "table") == "json":
        segment = _read_progress(_progress_log_path(args, cache))
        jobs = [r for r in segment if r.get("rec") == "job"]
        end = next(
            (r for r in segment if r.get("rec") in ("end", "interrupted")),
            None,
        )
        emit("json", {
            "sweep": {
                "total": len(specs),
                "cached": cached,
                "to_run": len(specs) - cached,
            },
            "cache": {
                "dir": str(cache.root),
                "entries": total_entries,
                "size_bytes": cache.size_bytes(),
            },
            "last_run": {
                "jobs_done": len(jobs),
                "state": (
                    "none" if not segment
                    else "running" if end is None
                    else end["rec"]
                ),
            },
        }, "")
        return 0
    print(f"sweep:   {cached}/{len(specs)} job(s) cached, "
          f"{len(specs) - cached} to run")
    print(f"cache:   {cache.root} — {total_entries} entr(ies), "
          f"{cache.size_bytes() / 1024:.1f} KiB")
    _summarize_progress(_progress_log_path(args, cache))
    return 0


def _cmd_clean(args) -> int:
    cache = _cache_from_args(args)
    n = cache.clear()
    print(f"removed {n} cache entr(ies) from {cache.root}")
    return 0


def _sigterm_to_interrupt(signum, frame):
    raise KeyboardInterrupt


def _cmd_run(args) -> int:
    # treat SIGTERM like ^C so `kill` leaves a resumable cache behind
    # (non-interactive shells start background jobs with SIGINT ignored,
    # so CI drives the interrupt path with SIGTERM)
    try:
        signal.signal(signal.SIGTERM, _sigterm_to_interrupt)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    specs = _specs_from_args(args)
    cache = _cache_from_args(args)
    plog = ProgressLog(_progress_log_path(args, cache))
    decision = None

    def progress(outcome: JobOutcome, done: int, total: int) -> None:
        mark = {"ok": "ok    ", "cached": "cached"}.get(
            outcome.status, outcome.status
        )
        print(f"[{done}/{total}] {mark}  {outcome.spec.describe()}"
              + (f"  {outcome.wall_time_s:.2f}s" if outcome.status == "ok"
                 else ""),
              flush=True)
        plog.write({
            "rec": "job",
            "key": outcome.key,
            "label": list(outcome.spec.label) or [outcome.spec.describe()],
            "status": outcome.status,
            "wall_time_s": round(outcome.wall_time_s, 4),
            "attempts": outcome.attempts,
            "done": done,
            "total": total,
        })

    runner = SweepRunner(
        cache=cache,
        jobs=args.jobs,
        max_retries=args.retries,
        use_cache=not args.force,
        progress=progress,
        batch=args.batch,
    )
    if getattr(args, "screen", None) == "surrogate":
        decision = runner.screen(specs, band=args.screen_band)
        print(f"screen:  surrogate kept {len(decision.kept)}/{len(specs)} "
              f"job(s) (band {decision.band:g}); "
              f"{len(decision.skipped)} screened out", flush=True)
        specs = decision.kept
    plog.write({
        "rec": "start",
        "total": len(specs),
        "workers": runner.jobs,
        "batch": runner.batch or "adaptive",
    })
    t0 = time.perf_counter()
    interrupted = False
    try:
        outcomes = runner.run(specs)
    except KeyboardInterrupt:
        print("\ninterrupted — completed jobs are cached; "
              "re-run with --resume to continue", file=sys.stderr)
        interrupted = True
        outcomes = {}
    finally:
        runner.close()
    wall = time.perf_counter() - t0
    plog.write({
        "rec": "interrupted" if interrupted else "end",
        "wall_time_s": round(wall, 3),
    })
    plog.close()

    if not interrupted:
        counts = {"ok": 0, "cached": 0, "failed": 0}
        for out in outcomes.values():
            counts[out.status] = counts.get(out.status, 0) + 1
        simulated = [o for o in outcomes.values() if o.status == "ok"]
        rate = len(simulated) / wall if wall > 0 else 0.0
        print(f"{len(outcomes)} job(s): {counts['ok']} simulated, "
              f"{counts['cached']} from cache, {counts['failed']} failed "
              f"in {wall:.1f}s ({rate:.2f} jobs/s)")
        if args.out:
            manifest = {
                "workers": runner.jobs,
                "batch": runner.batch or "adaptive",
                "wall_time_s": round(wall, 3),
                "totals": counts,
                "cache_dir": str(cache.root),
                "jobs": [o.as_dict() for o in outcomes.values()],
            }
            if decision is not None:
                manifest["screen"] = {
                    "mode": "surrogate",
                    "band": decision.band,
                    "kept": len(decision.kept),
                    "screened_out": len(decision.skipped),
                }
                manifest["screened_out"] = decision.skipped_records()
            with open(args.out, "w") as fh:
                json.dump(manifest, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.out}")
        if counts["failed"]:
            return 1
    return 130 if interrupted else 0


def _add_sweep_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--benchmarks", default=None,
                   help="comma-separated GPU benchmarks (default: all 11)")
    p.add_argument("--subset", type=int, default=None,
                   help="representative benchmark subset size")
    p.add_argument("--n-mixes", type=int, default=1,
                   help="Table II CPU co-runners per GPU benchmark")
    p.add_argument("--mechanisms", default=None,
                   help="comma-separated subset of baseline,rp,dr")
    add_window_options(p)
    add_seed_option(p)
    add_backend_option(p)
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory "
                        "(default: $REPRO_SWEEP_CACHE or .repro_sweep_cache)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="parallel, cached, resumable experiment sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="enumerate jobs and cache state")
    _add_sweep_options(list_p)

    run_p = sub.add_parser("run", help="execute the sweep")
    _add_sweep_options(run_p)
    add_jobs_option(run_p)
    add_batch_option(run_p)
    run_p.add_argument("--resume", action="store_true",
                       help="reuse cached results (the default; flag kept "
                            "for explicit resume-after-interrupt runs)")
    run_p.add_argument("--force", action="store_true",
                       help="ignore cached results and recompute everything")
    run_p.add_argument("--retries", type=int, default=2,
                       help="retry rounds for failed jobs (default 2)")
    run_p.add_argument("--screen", choices=("surrogate",), default=None,
                       help="hybrid sweep: simulate only the points the "
                            "analytical surrogate puts near or past the "
                            "saturation knee (plus one unclogged anchor)")
    run_p.add_argument("--screen-band", type=float, default=0.35,
                       help="screening guard band below the knee as a "
                            "fraction of the saturation threshold "
                            "(default 0.35)")
    run_p.add_argument("--out", default=None,
                       help="write a JSON run manifest to this path")
    add_deprecated_alias(run_p, "--manifest", "--out")
    run_p.add_argument("--progress-log", default=None,
                       help="per-job JSONL progress log "
                            "(default: <cache-dir>/progress.jsonl)")

    status_p = sub.add_parser("status", help="cached/missing breakdown")
    _add_sweep_options(status_p)
    add_format_option(status_p)
    status_p.add_argument("--progress-log", default=None,
                          help="progress log to summarise "
                               "(default: <cache-dir>/progress.jsonl)")

    clean_p = sub.add_parser("clean", help="delete every cache entry")
    _add_sweep_options(clean_p)

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "status": _cmd_status,
        "clean": _cmd_clean,
    }[args.command]
    try:
        return handler(args)
    except BackendError as exc:
        # an unusable --backend / $REPRO_BACKEND choice is a usage
        # error, not a sweep failure: one line, exit 2
        return backend_error_exit(exc)


if __name__ == "__main__":
    sys.exit(main())
