"""The sweep runner: fan simulation jobs out over worker processes.

Execution model:

* Specs are deduplicated by content key, then partitioned into cache
  hits (returned instantly) and pending jobs.
* Pending jobs run on a ``ProcessPoolExecutor`` (``jobs`` workers); with
  one worker — or a single job — they run inline in this process, which
  is also the reference path the determinism tests compare against.
* Each result is persisted to the :class:`ResultCache` *as it arrives*,
  so an interrupted sweep resumes from exactly the jobs that finished.
* Failed jobs are retried in later rounds with capped exponential
  backoff between rounds; a job that exhausts its attempts is reported
  as ``failed`` without aborting the rest of the sweep.

Simulations are deterministic functions of their :class:`JobSpec`, so
the parallel and inline paths produce bit-identical
:class:`SimulationResult` payloads — the test suite enforces this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.sim.metrics import SimulationResult
from repro.sweep.cache import ENV_CACHE_DIR, ResultCache
from repro.sweep.jobs import JobSpec, dedupe

ENV_JOBS = "REPRO_SWEEP_JOBS"


def stall_shares(
    breakdown: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, float]]:
    """Normalise a stall breakdown into per-group class *shares*.

    ``{"CPU": {"credit": 0.61, ...}, ...}`` — each group's classes sum
    to 1.0 (4 decimal places), so manifests carry a headline "where did
    the blocked cycles go" answer without absolute cycle counts that
    depend on window length.  Empty groups (and an empty breakdown, the
    untraced case) are dropped.
    """
    out: Dict[str, Dict[str, float]] = {}
    for group, classes in breakdown.items():
        total = sum(classes.values())
        if total <= 0:
            continue
        out[group] = {
            name: round(n / total, 4) for name, n in sorted(classes.items())
        }
    return out


def default_jobs() -> int:
    """Worker count when unspecified (``REPRO_SWEEP_JOBS``, default 1)."""
    return max(1, int(os.environ.get(ENV_JOBS, "1")))


def simulate_job(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one job and return its serialised result.

    Takes and returns plain dicts so the payload pickles cheaply and the
    parent never depends on worker-side object identity.
    """
    from repro.sim.simulator import run_simulation

    spec = JobSpec.from_dict(spec_dict)
    t0 = time.perf_counter()
    result = run_simulation(
        spec.system_config(),
        spec.gpu,
        spec.cpu,
        cycles=spec.cycles,
        warmup=spec.warmup,
        kernel_flush_interval=spec.kernel_flush_interval,
        faults=spec.fault_plan(),
    )
    return {
        "result": result.to_dict(),
        "wall_time_s": time.perf_counter() - t0,
    }


@dataclass
class JobOutcome:
    """Execution record of one deduplicated job."""

    spec: JobSpec
    key: str
    status: str = "pending"      # "ok" | "cached" | "failed"
    result: Optional[SimulationResult] = None
    wall_time_s: float = 0.0
    attempts: int = 0
    error: str = ""

    def as_dict(self) -> Dict[str, Any]:
        d = {
            "key": self.key,
            "label": list(self.spec.label) or [self.spec.describe()],
            "gpu": self.spec.gpu,
            "cpu": self.spec.cpu,
            "cycles": self.spec.cycles,
            "warmup": self.spec.warmup,
            "status": self.status,
            "wall_time_s": round(self.wall_time_s, 4),
            "attempts": self.attempts,
        }
        if self.error:
            d["error"] = self.error
        if self.result is not None:
            # headline + histogram-derived tail metrics so manifests are
            # usable without re-opening the cache
            d["metrics"] = {
                "cpu_latency_avg": round(self.result.cpu_latency_avg, 2),
                "cpu_latency_p50": self.result.cpu_latency_p50,
                "cpu_latency_p95": self.result.cpu_latency_p95,
                "cpu_latency_p99": self.result.cpu_latency_p99,
                "gpu_latency_p99": self.result.gpu_latency_p99,
                "mem_blocking_rate": round(self.result.mem_blocking_rate, 4),
            }
            if self.result.fault_retransmits or self.result.fault_lost:
                d["metrics"]["fault_retransmits"] = self.result.fault_retransmits
                d["metrics"]["fault_lost"] = self.result.fault_lost
                d["metrics"]["fault_recovery_p99"] = self.result.fault_recovery_p99
            shares = stall_shares(self.result.stall_breakdown)
            if shares:
                d["metrics"]["stall_shares"] = shares
        return d


class SweepError(RuntimeError):
    """Raised by :func:`run_sweep` when jobs exhaust their retries."""

    def __init__(self, failed: List[JobOutcome]) -> None:
        self.failed = failed
        lines = "; ".join(
            f"{o.spec.describe()}: {o.error}" for o in failed[:5]
        )
        super().__init__(f"{len(failed)} sweep job(s) failed: {lines}")


ProgressFn = Callable[[JobOutcome, int, int], None]


class SweepRunner:
    """Run :class:`JobSpec` batches with caching, retries and telemetry."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 4.0,
        worker: Callable[[Dict[str, Any]], Dict[str, Any]] = simulate_job,
        use_cache: bool = True,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.cache = cache
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.worker = worker
        self.use_cache = use_cache
        self.progress = progress

    # -- public API -------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> Dict[str, JobOutcome]:
        """Execute every unique spec; outcomes keyed by content hash.

        Completed results are cached on disk the moment they arrive, so
        interrupting this call loses only in-flight jobs.
        """
        unique = dedupe(specs)
        outcomes = {s.key(): JobOutcome(spec=s, key=s.key()) for s in unique}
        total = len(unique)
        done = 0

        pending: List[JobOutcome] = []
        for out in outcomes.values():
            hit = (
                self.cache.get(out.key)
                if (self.use_cache and self.cache is not None)
                else None
            )
            if hit is not None:
                out.status = "cached"
                out.result = hit
                done += 1
                self._report(out, done, total)
            else:
                pending.append(out)

        for round_no in range(1 + self.max_retries):
            if not pending:
                break
            if round_no:
                time.sleep(self._backoff(round_no))
            if self.jobs == 1 or len(pending) == 1:
                failures = self._run_inline(pending, lambda: done, total)
            else:
                failures = self._run_pool(pending, lambda: done, total)
            done += len(pending) - len(failures)
            pending = failures
        for out in pending:
            out.status = "failed"
        return outcomes

    # -- internals --------------------------------------------------------

    def _backoff(self, round_no: int) -> float:
        return min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (round_no - 1))
        )

    def _report(self, outcome: JobOutcome, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, done, total)

    def _complete(self, out: JobOutcome, payload: Dict[str, Any]) -> None:
        out.result = SimulationResult.from_dict(payload["result"])
        out.wall_time_s = float(payload.get("wall_time_s", 0.0))
        out.status = "ok"
        out.error = ""
        if self.cache is not None:
            self.cache.put(
                out.spec,
                out.result,
                meta={
                    "wall_time_s": out.wall_time_s,
                    "attempts": out.attempts,
                },
            )

    def _run_inline(
        self, pending: List[JobOutcome], done_base, total: int
    ) -> List[JobOutcome]:
        failures: List[JobOutcome] = []
        completed = 0
        for out in pending:
            out.attempts += 1
            try:
                payload = self.worker(out.spec.to_dict())
            except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                out.error = f"{type(exc).__name__}: {exc}"
                failures.append(out)
                continue
            self._complete(out, payload)
            completed += 1
            self._report(out, done_base() + completed, total)
        return failures

    def _run_pool(
        self, pending: List[JobOutcome], done_base, total: int
    ) -> List[JobOutcome]:
        failures: List[JobOutcome] = []
        completed = 0
        workers = min(self.jobs, len(pending))
        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {}
            for out in pending:
                out.attempts += 1
                futures[executor.submit(self.worker, out.spec.to_dict())] = out
            waiting = set(futures)
            while waiting:
                finished, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for fut in finished:
                    out = futures[fut]
                    try:
                        payload = fut.result()
                    except Exception as exc:  # noqa: BLE001 - retried
                        out.error = f"{type(exc).__name__}: {exc}"
                        failures.append(out)
                        continue
                    self._complete(out, payload)
                    completed += 1
                    self._report(out, done_base() + completed, total)
        except BaseException:
            # interrupt or pool breakage: everything persisted so far is
            # on disk; drop in-flight work and surface the exception
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        executor.shutdown(wait=True)
        return failures


def run_sweep(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = "auto",
    use_cache: bool = True,
    max_retries: int = 2,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, SimulationResult]:
    """Run a batch of specs and return ``{key: SimulationResult}``.

    ``cache="auto"`` (the default) persists to disk only when
    ``REPRO_SWEEP_CACHE`` is set, keeping plain library calls hermetic;
    pass a directory (or :class:`ResultCache`) to force persistence, or
    ``None`` to disable it.  Raises :class:`SweepError` if any job still
    fails after retries.
    """
    if cache == "auto":
        cache = ResultCache() if os.environ.get(ENV_CACHE_DIR) else None
    elif cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    runner = SweepRunner(
        cache=cache,
        jobs=jobs,
        max_retries=max_retries,
        use_cache=use_cache,
        progress=progress,
    )
    outcomes = runner.run(specs)
    failed = [o for o in outcomes.values() if o.status == "failed"]
    if failed:
        raise SweepError(failed)
    return {k: o.result for k, o in outcomes.items()}
