"""The sweep runner: fan simulation jobs out over worker processes.

Execution model:

* Specs are deduplicated by content key, then partitioned into cache
  hits (returned instantly) and pending jobs.
* Pending jobs run on one *warm* ``ProcessPoolExecutor`` (``jobs``
  workers) that the runner keeps alive across retry rounds — and across
  ``run()`` calls — so process start-up and module imports are paid once
  per worker, not once per round.  A pool ``initializer`` pre-imports
  :mod:`repro.sim.simulator`, so the first job on each worker does not
  pay the import tax either.  With one worker — or a single job — jobs
  run inline in this process, which is also the reference path the
  determinism tests compare against.
* Jobs are submitted in *chunks* (``batch`` specs per future, adaptive
  by default) so pickle/IPC round-trips amortise across short jobs.
  Each job inside a chunk still succeeds or fails individually, and the
  parent persists and reports every job the moment its chunk lands, so
  the :class:`ResultCache` granularity stays per-job.
* The pool uses the ``fork`` start method where the platform offers it
  (workers inherit the parent's already-imported modules for free) and
  falls back to ``spawn`` elsewhere; the initializer covers the spawn
  case.
* Each result is persisted to the :class:`ResultCache` *as it arrives*,
  so an interrupted sweep resumes from exactly the jobs that finished.
* Failed jobs are retried in later rounds; the first retry runs
  immediately (a fresh failure has not yet demonstrated persistence —
  deterministic failures should not serialise behind a pointless sleep)
  and only failures that survive a retry round trigger the capped
  exponential backoff.  A job that exhausts its attempts is reported as
  ``failed`` without aborting the rest of the sweep.  A worker process
  dying (``BrokenProcessPool``) fails only the chunks in flight; the
  pool is rebuilt before the next retry round.

Simulations are deterministic functions of their :class:`JobSpec`, so
the parallel and inline paths produce bit-identical
:class:`SimulationResult` payloads — the test suite enforces this.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.sim.metrics import SimulationResult
from repro.sweep.cache import ENV_CACHE_DIR, ResultCache
from repro.sweep.jobs import JobSpec, dedupe

ENV_JOBS = "REPRO_SWEEP_JOBS"
ENV_BATCH = "REPRO_SWEEP_BATCH"

#: adaptive batching aims at this many chunks per worker: enough slack
#: that a straggler chunk cannot idle the other workers for long, few
#: enough that per-future pickle/IPC overhead stays amortised.
CHUNKS_PER_WORKER = 4
#: adaptive chunk-size ceiling, so one chunk never starves the
#: per-job progress stream (and the incremental cache) for too long.
MAX_ADAPTIVE_BATCH = 32


def stall_shares(
    breakdown: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, float]]:
    """Normalise a stall breakdown into per-group class *shares*.

    ``{"CPU": {"credit": 0.61, ...}, ...}`` — each group's classes sum
    to exactly 1.0 (4 decimal places, largest-remainder apportionment),
    so manifests carry a headline "where did the blocked cycles go"
    answer without absolute cycle counts that depend on window length.
    Empty groups (and an empty breakdown, the untraced case) are
    dropped.
    """
    out: Dict[str, Dict[str, float]] = {}
    for group, classes in breakdown.items():
        total = sum(classes.values())
        if total <= 0:
            continue
        # Independent rounding lets a group sum to 0.9999/1.0001, so
        # apportion 10000 fixed-point units instead: floor each share,
        # then hand the leftover units to the largest remainders
        # (ties broken by class name, keeping the result deterministic).
        names = sorted(classes)
        units: List[int] = []
        remainders: List[float] = []
        for name in names:
            exact = classes[name] * 10000.0 / total
            floor = int(exact)
            units.append(floor)
            remainders.append(exact - floor)
        leftover = 10000 - sum(units)
        order = sorted(
            range(len(names)), key=lambda i: (-remainders[i], names[i])
        )
        for i in order[:leftover]:
            units[i] += 1
        out[group] = {
            name: units[i] / 10000.0 for i, name in enumerate(names)
        }
    return out


def _env_worker_count(env: str, fallback: Optional[int]) -> Optional[int]:
    raw = os.environ.get(env)
    if raw is None:
        return fallback
    try:
        return max(1, int(raw))
    except ValueError:
        print(
            f"warning: ignoring {env}={raw!r} (not an integer); "
            f"using {'adaptive' if fallback is None else fallback}",
            file=sys.stderr,
        )
        return fallback


def default_jobs() -> int:
    """Worker count when unspecified (``REPRO_SWEEP_JOBS``, default 1).

    A malformed value (``REPRO_SWEEP_JOBS=two``) warns once on stderr
    and falls back to 1 instead of crashing the whole sweep.
    """
    return _env_worker_count(ENV_JOBS, 1)


def default_batch() -> Optional[int]:
    """Chunk size when unspecified (``REPRO_SWEEP_BATCH``, default
    ``None`` = adaptive)."""
    return _env_worker_count(ENV_BATCH, None)


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context worker pools are built from.

    ``fork`` where the platform offers it: forked workers inherit the
    parent's imported modules (the simulator import tax is already
    paid) and start in milliseconds.  Elsewhere (Windows, macOS
    pythons configured spawn-only) this falls back to ``spawn``, where
    the pool initializer pre-imports the simulator so the cost lands
    once per worker at pool start, never per job.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _worker_init() -> None:
    """Pool initializer: pre-import the simulator in the worker.

    Import errors are deliberately swallowed — a failing import should
    surface as a per-job error (with retries and a per-job message),
    not as an opaque broken pool.
    """
    try:
        import repro.sim.simulator  # noqa: F401
    except Exception:  # pragma: no cover - exercised via job failure
        pass


def _worker_ready(delay_s: float) -> int:
    """Warm-up barrier task: occupy one worker briefly, report its pid."""
    time.sleep(delay_s)
    return os.getpid()


def simulate_job(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one job and return its serialised result.

    Takes and returns plain dicts so the payload pickles cheaply and the
    parent never depends on worker-side object identity.
    """
    from repro.sim.simulator import run_simulation

    spec = JobSpec.from_dict(spec_dict)
    t0 = time.perf_counter()
    result = run_simulation(
        spec.system_config(),
        spec.gpu,
        spec.cpu,
        cycles=spec.cycles,
        warmup=spec.warmup,
        kernel_flush_interval=spec.kernel_flush_interval,
        faults=spec.fault_plan(),
        backend=spec.backend,
    )
    return {
        "result": result.to_dict(),
        "wall_time_s": time.perf_counter() - t0,
    }


def run_job_batch(
    worker: Callable[[Dict[str, Any]], Dict[str, Any]],
    spec_dicts: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Worker entry point for a chunk: run each job, isolate each error.

    One future carries the whole chunk (amortising submit/pickle/IPC
    overhead across short jobs), but every job inside it still succeeds
    or fails on its own: a raising job yields an ``{"ok": False}``
    record instead of poisoning its chunk-mates.
    """
    results: List[Dict[str, Any]] = []
    for spec_dict in spec_dicts:
        try:
            results.append({"ok": True, "payload": worker(spec_dict)})
        except Exception as exc:  # noqa: BLE001 - retried, then surfaced
            results.append(
                {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )
    return results


@dataclass
class JobOutcome:
    """Execution record of one deduplicated job."""

    spec: JobSpec
    key: str
    status: str = "pending"      # "ok" | "cached" | "failed"
    result: Optional[SimulationResult] = None
    wall_time_s: float = 0.0
    attempts: int = 0
    error: str = ""

    def as_dict(self) -> Dict[str, Any]:
        d = {
            "key": self.key,
            "label": list(self.spec.label) or [self.spec.describe()],
            "gpu": self.spec.gpu,
            "cpu": self.spec.cpu,
            "cycles": self.spec.cycles,
            "warmup": self.spec.warmup,
            "backend": self.spec.backend,
            "status": self.status,
            "wall_time_s": round(self.wall_time_s, 4),
            "attempts": self.attempts,
        }
        if self.error:
            d["error"] = self.error
        if self.result is not None:
            # headline + histogram-derived tail metrics so manifests are
            # usable without re-opening the cache
            d["metrics"] = {
                "cpu_latency_avg": round(self.result.cpu_latency_avg, 2),
                "cpu_latency_p50": self.result.cpu_latency_p50,
                "cpu_latency_p95": self.result.cpu_latency_p95,
                "cpu_latency_p99": self.result.cpu_latency_p99,
                "gpu_latency_p99": self.result.gpu_latency_p99,
                "mem_blocking_rate": round(self.result.mem_blocking_rate, 4),
            }
            if self.result.fault_retransmits or self.result.fault_lost:
                d["metrics"]["fault_retransmits"] = self.result.fault_retransmits
                d["metrics"]["fault_lost"] = self.result.fault_lost
                d["metrics"]["fault_recovery_p99"] = self.result.fault_recovery_p99
            shares = stall_shares(self.result.stall_breakdown)
            if shares:
                d["metrics"]["stall_shares"] = shares
            if self.result.telemetry_metrics:
                d["metrics"]["telemetry"] = dict(self.result.telemetry_metrics)
        return d


@dataclass
class ScreenDecision:
    """Outcome of a surrogate screening pass over a sweep's specs."""

    kept: List[JobSpec]
    skipped: List[Any]  # (JobSpec, repro.model.Prediction) pairs
    band: float

    def skipped_records(self) -> List[Dict[str, Any]]:
        """Manifest-ready records of the screened-out points."""
        return [
            {
                "key": spec.key(),
                "label": list(spec.label) or [spec.describe()],
                "demand_rho": round(pred.demand_rho, 3),
                "predicted_cpu_latency": round(pred.cpu_latency_avg, 1),
            }
            for spec, pred in self.skipped
        ]


class SweepError(RuntimeError):
    """Raised by :func:`run_sweep` when jobs exhaust their retries."""

    def __init__(self, failed: List[JobOutcome]) -> None:
        self.failed = failed
        lines = "; ".join(
            f"{o.spec.describe()}: {o.error}" for o in failed[:5]
        )
        if len(failed) > 5:
            lines += f" (and {len(failed) - 5} more)"
        super().__init__(f"{len(failed)} sweep job(s) failed: {lines}")


ProgressFn = Callable[[JobOutcome, int, int], None]


class SweepRunner:
    """Run :class:`JobSpec` batches with caching, retries and telemetry.

    The runner owns a warm worker pool: created lazily on the first
    parallel round, reused across retry rounds and subsequent ``run()``
    calls, torn down by :meth:`close` (or the context-manager exit).
    ``batch`` controls how many specs ride one future — ``None`` picks a
    chunk size adaptive to ``len(pending) / workers``, ``1`` submits
    per-job (the pre-batching wire format).
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        jobs: Optional[int] = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 4.0,
        worker: Callable[[Dict[str, Any]], Dict[str, Any]] = simulate_job,
        use_cache: bool = True,
        progress: Optional[ProgressFn] = None,
        batch: Optional[int] = None,
    ) -> None:
        self.cache = cache
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.worker = worker
        self.use_cache = use_cache
        self.progress = progress
        self.batch = default_batch() if batch is None else max(1, int(batch))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        #: pools built over this runner's lifetime — the warm-pool tests
        #: (and curious operators) read this; steady state is 1.
        self.pools_created = 0

    # -- pool lifecycle ---------------------------------------------------

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The warm pool, (re)built only when absent or too small."""
        if self._pool is not None and self._pool_workers < workers:
            self._close_pool(wait=True)
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=pool_context(),
                initializer=_worker_init,
            )
            self._pool_workers = workers
            self.pools_created += 1
        return self._pool

    def _close_pool(self, wait: bool = True, cancel: bool = False) -> None:
        if self._pool is None:
            return
        pool, self._pool, self._pool_workers = self._pool, None, 0
        pool.shutdown(wait=wait, cancel_futures=cancel)

    def warm(self, workers: Optional[int] = None) -> None:
        """Spin the pool up ahead of time (best-effort readiness barrier).

        Long campaigns and benchmarks call this so worker start-up and
        the initializer's simulator pre-import happen before the first
        (timed) job.  Each barrier task sleeps briefly, which pushes the
        queue across all workers instead of letting the first-started
        worker drain it alone.
        """
        workers = self.jobs if workers is None else max(1, int(workers))
        if workers <= 1:
            return
        pool = self._ensure_pool(workers)
        for fut in [
            pool.submit(_worker_ready, 0.02) for _ in range(workers)
        ]:
            fut.result()

    def close(self) -> None:
        """Shut the warm pool down (idempotent)."""
        self._close_pool(wait=True)

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API -------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> Dict[str, JobOutcome]:
        """Execute every unique spec; outcomes keyed by content hash.

        Completed results are cached on disk the moment they arrive, so
        interrupting this call loses only in-flight jobs.
        """
        unique = dedupe(specs)
        outcomes = {s.key(): JobOutcome(spec=s, key=s.key()) for s in unique}
        total = len(unique)
        done = 0

        pending: List[JobOutcome] = []
        for out in outcomes.values():
            hit = (
                self.cache.get(out.key)
                if (self.use_cache and self.cache is not None)
                else None
            )
            if hit is not None:
                out.status = "cached"
                out.result = hit
                done += 1
                self._report(out, done, total)
            else:
                pending.append(out)

        for round_no in range(1 + self.max_retries):
            if not pending:
                break
            if round_no >= 2:
                # round 1's pending came fresh from round 0, so the first
                # retry runs immediately — instant deterministic failures
                # should not serialise behind a sleep.  Only failures that
                # survived a retry round (carried over again) back off.
                time.sleep(self._backoff(round_no - 1))
            if self.jobs == 1 or len(pending) == 1:
                failures = self._run_inline(pending, lambda: done, total)
            else:
                failures = self._run_pool(pending, lambda: done, total)
            done += len(pending) - len(failures)
            pending = failures
        for out in pending:
            out.status = "failed"
        return outcomes

    def screen(
        self, specs: Sequence[JobSpec], band: float = 0.35
    ) -> "ScreenDecision":
        """Partition specs with the analytical surrogate (hybrid sweep).

        Runs :func:`repro.model.predict` over every spec (milliseconds
        per point) and keeps only the points whose predicted demand
        utilisation lands within ``band`` of the saturation knee — plus
        the lowest-scoring point as an unclogged far-field anchor, see
        :func:`repro.model.saturation.keep_mask`.  The caller then
        passes ``decision.kept`` to :meth:`run`; skipped specs are
        reported in ``decision.skipped`` so manifests can record what
        the surrogate screened out.  Screening never touches the cache,
        so the jobs that do run produce bit-identical results to an
        unscreened sweep.
        """
        # imported lazily: repro.model sits on top of repro.sweep, so a
        # module-level import here would be circular.
        from repro.model.compose import predict
        from repro.model.saturation import keep_mask

        preds = [predict(s.system_config(), s.gpu, s.cpu) for s in specs]
        mask = keep_mask(preds, band=band)
        kept = [s for s, keep in zip(specs, mask) if keep]
        skipped = [
            (s, p) for s, p, keep in zip(specs, preds, mask) if not keep
        ]
        return ScreenDecision(kept=kept, skipped=skipped, band=band)

    # -- internals --------------------------------------------------------

    def _backoff(self, round_no: int) -> float:
        return min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (round_no - 1))
        )

    def _chunk_size(self, n_pending: int, workers: int) -> int:
        if self.batch is not None:
            return self.batch
        target = -(-n_pending // (workers * CHUNKS_PER_WORKER))
        return max(1, min(MAX_ADAPTIVE_BATCH, target))

    def _report(self, outcome: JobOutcome, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, done, total)

    def _complete(self, out: JobOutcome, payload: Dict[str, Any]) -> None:
        out.result = SimulationResult.from_dict(payload["result"])
        out.wall_time_s = float(payload.get("wall_time_s", 0.0))
        out.status = "ok"
        out.error = ""
        if self.cache is not None:
            self.cache.put(
                out.spec,
                out.result,
                meta={
                    "wall_time_s": out.wall_time_s,
                    "attempts": out.attempts,
                },
            )

    def _run_inline(
        self, pending: List[JobOutcome], done_base, total: int
    ) -> List[JobOutcome]:
        failures: List[JobOutcome] = []
        completed = 0
        for out in pending:
            out.attempts += 1
            try:
                payload = self.worker(out.spec.to_dict())
            except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                out.error = f"{type(exc).__name__}: {exc}"
                failures.append(out)
                continue
            self._complete(out, payload)
            completed += 1
            self._report(out, done_base() + completed, total)
        return failures

    def _run_pool(
        self, pending: List[JobOutcome], done_base, total: int
    ) -> List[JobOutcome]:
        failures: List[JobOutcome] = []
        completed = 0
        pool = self._ensure_pool(min(self.jobs, len(pending)))
        chunk_size = self._chunk_size(len(pending), self._pool_workers)
        pool_broken = False
        try:
            futures: Dict[Any, List[JobOutcome]] = {}
            for i in range(0, len(pending), chunk_size):
                chunk = pending[i:i + chunk_size]
                for out in chunk:
                    out.attempts += 1
                futures[
                    pool.submit(
                        run_job_batch,
                        self.worker,
                        [o.spec.to_dict() for o in chunk],
                    )
                ] = chunk
            waiting = set(futures)
            while waiting:
                finished, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for fut in finished:
                    chunk = futures[fut]
                    try:
                        results = fut.result()
                    except Exception as exc:  # noqa: BLE001 - retried
                        # the chunk died with its worker (crash, lost
                        # pickle, broken pool): every job in it retries
                        error = f"{type(exc).__name__}: {exc}"
                        for out in chunk:
                            out.error = error
                            failures.append(out)
                        if isinstance(exc, BrokenProcessPool):
                            pool_broken = True
                        continue
                    for out, res in zip(chunk, results):
                        if res.get("ok"):
                            self._complete(out, res["payload"])
                            completed += 1
                            self._report(out, done_base() + completed, total)
                        else:
                            out.error = res.get("error", "worker error")
                            failures.append(out)
        except BaseException:
            # interrupt or pool breakage: everything persisted so far is
            # on disk; drop in-flight work and surface the exception
            self._close_pool(wait=False, cancel=True)
            raise
        if pool_broken:
            # a dead worker poisons the whole executor — rebuild so the
            # retry round (if any) starts from a healthy pool
            self._close_pool(wait=False, cancel=True)
        return failures


def run_sweep(
    specs: Sequence[JobSpec],
    jobs: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None] = "auto",
    use_cache: bool = True,
    max_retries: int = 2,
    progress: Optional[ProgressFn] = None,
    batch: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run a batch of specs and return ``{key: SimulationResult}``.

    ``cache="auto"`` (the default) persists to disk only when
    ``REPRO_SWEEP_CACHE`` is set, keeping plain library calls hermetic;
    pass a directory (or :class:`ResultCache`) to force persistence, or
    ``None`` to disable it.  ``batch`` sets the jobs-per-future chunk
    size (default: adaptive, see :class:`SweepRunner`).  Raises
    :class:`SweepError` if any job still fails after retries.
    """
    if cache == "auto":
        cache = ResultCache() if os.environ.get(ENV_CACHE_DIR) else None
    elif cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    with SweepRunner(
        cache=cache,
        jobs=jobs,
        max_retries=max_retries,
        use_cache=use_cache,
        progress=progress,
        batch=batch,
    ) as runner:
        outcomes = runner.run(specs)
    failed = [o for o in outcomes.values() if o.status == "failed"]
    if failed:
        raise SweepError(failed)
    return {k: o.result for k, o in outcomes.items()}
