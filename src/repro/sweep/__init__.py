"""Parallel, cached, resumable experiment execution.

The sweep subsystem turns the (GPU benchmark x CPU co-runner x
mechanism) cross products behind the paper's figures into explicit
:class:`JobSpec` batches, runs them over a process pool, and persists
every result to a content-addressed on-disk cache so re-runs and
interrupted sweeps resume for free.  ``python -m repro.sweep`` exposes
it on the command line; :func:`repro.experiments.common.mechanism_sweep`
and :func:`~repro.experiments.common.run_config` route through it.
"""

from repro.sweep.cache import (
    DEFAULT_CACHE_DIRNAME,
    ENV_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)
from repro.sweep.jobs import (
    CODE_VERSION,
    JobSpec,
    code_salt,
    dedupe,
    mechanism_jobs,
)
from repro.sweep.runner import (
    ENV_BATCH,
    ENV_JOBS,
    JobOutcome,
    ScreenDecision,
    SweepError,
    SweepRunner,
    default_batch,
    default_jobs,
    pool_context,
    run_job_batch,
    run_sweep,
    simulate_job,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_CACHE_DIRNAME",
    "ENV_BATCH",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "ScreenDecision",
    "SweepError",
    "SweepRunner",
    "code_salt",
    "dedupe",
    "default_batch",
    "default_cache_dir",
    "default_jobs",
    "mechanism_jobs",
    "pool_context",
    "run_job_batch",
    "run_sweep",
    "simulate_job",
]
