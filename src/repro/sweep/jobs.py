"""Job enumeration: hashable, serialisable simulation job specs.

A :class:`JobSpec` is the complete, immutable description of one
simulation: the full :class:`~repro.config.system.SystemConfig` (carried
as canonical JSON so the spec itself is hashable), the GPU/CPU workload
pair and the warmup/measured window.  Its :meth:`~JobSpec.key` is a
content hash over everything that can influence the
:class:`~repro.sim.metrics.SimulationResult`, salted with a code-version
string so cache entries are invalidated when simulator semantics change.

The ``label`` field is bookkeeping only (e.g. the ``(gpu, cpu,
mechanism)`` triple the experiment modules key their sweeps by) and is
deliberately excluded from the hash: two specs describing the same
simulation share one cache entry regardless of how callers name them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config.loader import config_from_dict
from repro.config.system import SystemConfig

#: bump when a change to the simulator alters results for identical
#: configs — every on-disk cache entry becomes stale at once.
#: sweep-v2: results carry latency-histogram counters and percentile
#: fields (repro.telemetry).
#: sweep-v3: results carry stall-attribution breakdown fields
#: (repro.telemetry.blame).
#: sweep-v4: specs can carry a fault plan (repro.faults) and results
#: rename cpu_avg_latency -> cpu_latency_avg + gain fault_* fields.
#: sweep-v5: specs carry the simulation backend (repro.sim.engines) and
#: the object kernel's NIC drains in-flight worms in deterministic
#: packet-key order, shifting delivered-counter timings slightly.
CODE_VERSION = "sweep-v5"


def code_salt() -> str:
    """The cache-key salt (``REPRO_SWEEP_SALT`` overrides the built-in)."""
    return os.environ.get("REPRO_SWEEP_SALT", CODE_VERSION)


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One simulation job: config + workload + window.  Hashable."""

    config_json: str
    gpu: str
    cpu: Optional[str]
    cycles: int
    warmup: int
    kernel_flush_interval: int = 0
    #: display/bookkeeping label; NOT part of the cache key.
    label: Tuple[str, ...] = ()
    #: canonical JSON of the :class:`~repro.faults.plan.FaultPlan`, or
    #: None for a fault-free run.  Part of the cache key: a chaos run and
    #: a clean run of the same config are different results.
    faults: Optional[str] = None
    #: simulation engine (see :mod:`repro.sim.engines`).  Part of the
    #: cache key: backends are pinned bit-identical against the object
    #: kernel's synchronous oracle, but the default object scheduler is
    #: asynchronous, so per-backend results may legitimately differ.
    backend: str = "object"

    @classmethod
    def make(
        cls,
        config: Union[SystemConfig, Dict[str, Any]],
        gpu: str,
        cpu: Optional[str] = None,
        cycles: int = 3000,
        warmup: int = 2000,
        kernel_flush_interval: int = 0,
        label: Sequence[str] = (),
        faults: Any = None,
        backend: Optional[str] = None,
    ) -> "JobSpec":
        from repro.sim.engines import resolve_backend

        if isinstance(config, SystemConfig):
            config = config.to_dict()
        if faults is not None and not isinstance(faults, str):
            if isinstance(faults, dict):
                faults = _canonical_json(faults)
            else:  # a FaultPlan
                faults = faults.canonical_json()
        return cls(
            config_json=_canonical_json(config),
            gpu=gpu,
            cpu=cpu,
            cycles=int(cycles),
            warmup=int(warmup),
            kernel_flush_interval=int(kernel_flush_interval),
            label=tuple(label),
            faults=faults,
            backend=resolve_backend(backend),
        )

    # -- identity ---------------------------------------------------------

    def key(self) -> str:
        """Content hash of everything that determines the result.

        The ``telemetry`` config section is excluded: tracing is
        observation only (bit-identical counters with it on or off), so
        a traced and an untraced run of the same config share one cache
        entry.
        """
        config = json.loads(self.config_json)
        config.pop("telemetry", None)
        payload = _canonical_json(
            {
                "salt": code_salt(),
                "config": config,
                "gpu": self.gpu,
                "cpu": self.cpu,
                "cycles": self.cycles,
                "warmup": self.warmup,
                "kernel_flush_interval": self.kernel_flush_interval,
                "faults": self.faults,
                "backend": self.backend,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- materialisation --------------------------------------------------

    def system_config(self) -> SystemConfig:
        """Rebuild the full :class:`SystemConfig` this spec describes."""
        return config_from_dict(json.loads(self.config_json))

    def fault_plan(self):
        """Rebuild the :class:`~repro.faults.plan.FaultPlan`, or None."""
        if self.faults is None:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan.from_dict(json.loads(self.faults))

    def describe(self) -> str:
        if self.label:
            return "/".join(self.label)
        mech = json.loads(self.config_json).get("mechanism", "?")
        return f"{self.gpu}/{self.cpu or '-'}/{mech}"

    # -- wire format (manifests, worker payloads) -------------------------

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["label"] = list(self.label)
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        data = dict(data)
        data["label"] = tuple(data.get("label", ()))
        return cls(**data)


def dedupe(specs: Sequence[JobSpec]) -> List[JobSpec]:
    """Drop specs whose key duplicates an earlier one (order-preserving)."""
    seen = set()
    out: List[JobSpec] = []
    for spec in specs:
        k = spec.key()
        if k not in seen:
            seen.add(k)
            out.append(spec)
    return out


def mechanism_jobs(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    mechanisms: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> List[JobSpec]:
    """Enumerate the paper's mechanism sweep (Figs. 10-14, energy study).

    The cross product of (GPU benchmark x Table II CPU co-runner x
    mechanism), labelled ``(gpu, cpu, mechanism)`` — the key the
    experiment modules index their sweeps by.
    """
    # imported lazily: experiments.common routes its sweep through this
    # package, so a module-level import would be circular
    from repro.experiments.common import (
        MECHANISMS,
        cpu_corunners,
        default_benchmarks,
        default_cycles,
        default_warmup,
        mechanism_config,
    )

    benchmarks = list(benchmarks or default_benchmarks())
    mechanisms = tuple(mechanisms or MECHANISMS)
    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup
    specs: List[JobSpec] = []
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            for mech in mechanisms:
                specs.append(
                    JobSpec.make(
                        mechanism_config(mech),
                        gpu,
                        cpu,
                        cycles=cycles,
                        warmup=warmup,
                        label=(gpu, cpu, mech),
                        backend=backend,
                    )
                )
    return specs
