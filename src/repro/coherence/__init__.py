"""Coherence: GPU software coherence and the CPU-domain MESI directory."""

from repro.coherence.mesi import (
    CoherenceAction,
    DirectoryEntry,
    MesiDirectory,
    MesiState,
)
from repro.coherence.software import (
    CoherenceStats,
    SoftwareCoherenceController,
)

__all__ = [
    "CoherenceAction",
    "CoherenceStats",
    "DirectoryEntry",
    "MesiDirectory",
    "MesiState",
    "SoftwareCoherenceController",
]
