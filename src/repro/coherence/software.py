"""GPU software coherence (Sections II and IV).

GPUs keep their L1 caches coherent in software: L1s are write-through,
and compiler-inserted cache-control operations flush (invalidate) them at
synchronisation boundaries such as kernel launch/completion.  Delegated
Replies lives inside this coherence domain:

* every write-through to the LLC invalidates the block's core pointer, so
  readers after a write are always served the fresh copy by the LLC;
* an L1 flush makes every pointer into that L1 stale, so the flush also
  drops all LLC core pointers;
* delegation therefore only ever serves shared *read-only* data — which
  dominates GPU sharing [61].

``SoftwareCoherenceController`` orchestrates flushes across the system and
models their cost: flushing is not free, each core is prevented from
issuing for ``flush_penalty`` cycles (pipeline drain + tag-array sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class CoherenceStats:
    flushes: int = 0
    lines_invalidated: int = 0
    pointers_dropped: int = 0


class SoftwareCoherenceController:
    """Coordinates kernel-boundary flushes of the GPU coherence domain."""

    def __init__(self, gpu_cores: List, memory_nodes: List, flush_penalty: int = 50):
        self.gpu_cores = gpu_cores
        self.memory_nodes = memory_nodes
        self.flush_penalty = flush_penalty
        self.stats = CoherenceStats()

    def kernel_boundary(self, cycle: int) -> None:
        """Flush every GPU L1 and drop every LLC core pointer."""
        self.stats.flushes += 1
        for core in self.gpu_cores:
            self.stats.lines_invalidated += core.flush_l1()
            core.stall_until = max(
                getattr(core, "stall_until", 0), cycle + self.flush_penalty
            )
        for mem in self.memory_nodes:
            self.stats.pointers_dropped += mem.flush_pointers()
