"""MESI directory coherence for the CPU domain (Table I).

The paper models MESI among the CPU cores; Delegated Replies never
crosses the CPU-GPU coherence boundary (Section IV).  The evaluation's
CPU workloads are multi-programmed Parsec instances with disjoint address
spaces, so the directory observes no sharing at steady state and adds no
traffic beyond the LLC round trip the timing model already charges — but
the protocol itself is implemented in full and unit-tested so the CPU
domain is a real substrate, not a stub.

The directory is a full-map directory co-located with the LLC: per block,
the set of sharers and the owner (if modified/exclusive).  The state
machine covers the standard MESI transactions: GetS, GetM, PutM (write
back), plus eviction of shared lines, with invalidation and
owner-downgrade messages returned to the caller for accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class MesiState(str, enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class DirectoryEntry:
    """Full-map directory state for one block."""

    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # holder in M or E

    @property
    def state(self) -> MesiState:
        if self.owner is not None:
            return MesiState.MODIFIED  # M or E from the directory's view
        if self.sharers:
            return MesiState.SHARED
        return MesiState.INVALID


@dataclass
class CoherenceAction:
    """What the directory asks the fabric to do for one request."""

    #: caches that must be invalidated before the requester proceeds
    invalidate: Tuple[int, ...] = ()
    #: cache that must supply/downgrade its (M/E) copy
    fetch_from: Optional[int] = None
    #: state the requester's cache installs the line in
    grant: MesiState = MesiState.INVALID


@dataclass
class DirectoryStats:
    gets: int = 0
    getm: int = 0
    putm: int = 0
    evictions: int = 0
    invalidations_sent: int = 0
    owner_fetches: int = 0


class MesiDirectory:
    """Full-map MESI directory for one coherence domain."""

    def __init__(self) -> None:
        self._entries: Dict[int, DirectoryEntry] = {}
        self.stats = DirectoryStats()

    def _entry(self, block: int) -> DirectoryEntry:
        return self._entries.setdefault(block, DirectoryEntry())

    def state_of(self, block: int) -> MesiState:
        entry = self._entries.get(block)
        return entry.state if entry else MesiState.INVALID

    def sharers_of(self, block: int) -> Set[int]:
        entry = self._entries.get(block)
        return set(entry.sharers) if entry else set()

    def owner_of(self, block: int) -> Optional[int]:
        entry = self._entries.get(block)
        return entry.owner if entry else None

    # -- transactions ---------------------------------------------------

    def get_shared(self, core: int, block: int) -> CoherenceAction:
        """GetS: a core wants a readable copy."""
        self.stats.gets += 1
        entry = self._entry(block)
        if entry.owner is not None and entry.owner != core:
            # owner must downgrade M/E -> S and supply the data
            self.stats.owner_fetches += 1
            previous = entry.owner
            entry.sharers.update({previous, core})
            entry.owner = None
            return CoherenceAction(fetch_from=previous, grant=MesiState.SHARED)
        if not entry.sharers and entry.owner is None:
            # first reader: grant Exclusive (the E optimisation)
            entry.owner = core
            return CoherenceAction(grant=MesiState.EXCLUSIVE)
        entry.sharers.add(core)
        return CoherenceAction(grant=MesiState.SHARED)

    def get_modified(self, core: int, block: int) -> CoherenceAction:
        """GetM: a core wants a writable copy."""
        self.stats.getm += 1
        entry = self._entry(block)
        invalidate: List[int] = []
        fetch: Optional[int] = None
        if entry.owner is not None and entry.owner != core:
            fetch = entry.owner
            self.stats.owner_fetches += 1
        invalidate.extend(s for s in entry.sharers if s != core)
        self.stats.invalidations_sent += len(invalidate)
        entry.sharers.clear()
        entry.owner = core
        return CoherenceAction(
            invalidate=tuple(invalidate),
            fetch_from=fetch,
            grant=MesiState.MODIFIED,
        )

    def put_modified(self, core: int, block: int) -> None:
        """PutM: the owner writes the dirty line back."""
        self.stats.putm += 1
        entry = self._entries.get(block)
        if entry is None or entry.owner != core:
            raise ValueError(f"core {core} does not own block {block:#x}")
        entry.owner = None
        if not entry.sharers:
            del self._entries[block]

    def evict_shared(self, core: int, block: int) -> None:
        """A core silently drops a Shared (or downgraded) copy."""
        self.stats.evictions += 1
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers and entry.owner is None:
            del self._entries[block]

    def tracked_blocks(self) -> int:
        return len(self._entries)
