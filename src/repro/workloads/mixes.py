"""The 33 heterogeneous CPU-GPU workload mixes of Table II.

Each of the 11 GPU benchmarks co-runs with each of its three randomly
selected CPU benchmarks; a *workload* allocates all 40 GPU cores to the
GPU benchmark and all 16 CPU cores to the CPU benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.cpu import CpuBenchmarkProfile, cpu_benchmark
from repro.workloads.gpu import GpuBenchmarkProfile, gpu_benchmark

#: Table II: GPU benchmark -> its three co-running CPU benchmarks.
TABLE_II: Dict[str, Tuple[str, str, str]] = {
    "2DCON": ("blackscholes", "canneal", "dedup"),
    "3DCON": ("bodytrack", "dedup", "fluidanimate"),
    "BT": ("dedup", "fluidanimate", "vips"),
    "SC": ("bodytrack", "ferret", "swaptions"),
    "HS": ("bodytrack", "ferret", "x264"),
    "LPS": ("fluidanimate", "vips", "x264"),
    "LUD": ("ferret", "blackscholes", "swaptions"),
    "MM": ("canneal", "fluidanimate", "vips"),
    "NN": ("blackscholes", "fluidanimate", "swaptions"),
    "SRAD": ("fluidanimate", "ferret", "x264"),
    "BP": ("blackscholes", "bodytrack", "ferret"),
}


@dataclass(frozen=True)
class WorkloadMix:
    """One heterogeneous workload: a GPU benchmark plus a CPU benchmark."""

    gpu: GpuBenchmarkProfile
    cpu: CpuBenchmarkProfile

    @property
    def name(self) -> str:
        return f"{self.gpu.name}+{self.cpu.name}"


def workload_mixes() -> List[WorkloadMix]:
    """All 33 CPU-GPU mixes of Table II, in table order."""
    mixes = []
    for gpu_name, cpu_names in TABLE_II.items():
        for cpu_name in cpu_names:
            mixes.append(WorkloadMix(gpu_benchmark(gpu_name), cpu_benchmark(cpu_name)))
    return mixes


def mixes_for_gpu(gpu_name: str) -> List[WorkloadMix]:
    """The three mixes containing a given GPU benchmark."""
    cpu_names = TABLE_II[gpu_name.upper()]
    gpu = gpu_benchmark(gpu_name)
    return [WorkloadMix(gpu, cpu_benchmark(c)) for c in cpu_names]


def primary_mix(gpu_name: str) -> WorkloadMix:
    """The first Table II mix for a GPU benchmark (used by quick runs)."""
    return mixes_for_gpu(gpu_name)[0]
