"""Synthetic CPU benchmark models (Parsec, Table II).

The paper drives CPU traffic with Netrace [26]: dependency-annotated
traces whose replay speed reacts to network latency.  We reproduce that
role with a dependency-driven generator: each CPU core executes an
instruction stream with a memory operation every ``mem_interval``
instructions; a ``dep_fraction`` of L1-missing loads is *dependent* — the
core stalls until the reply returns — while the rest overlap with
execution.  CPU performance therefore degrades smoothly with network
latency, and the per-benchmark ``dep_fraction`` sets how latency-sensitive
a benchmark is (vips high, dedup low — matching Figs. 12-13).

Published injection rates span 0.013 to 0.084 flits/cycle per CPU core;
``mem_interval`` and the L1 locality parameters are calibrated to land in
that range under a quiet network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: base of the CPU address region (in 64 B blocks); each core gets a
#: disjoint slice.  Chosen so the 128 B view (block >> 1) cannot collide
#: with the GPU shared/private regions.
_CPU_REGION = 8 << 32


@dataclass(frozen=True)
class CpuBenchmarkProfile:
    """Calibrated generator parameters for one Parsec benchmark."""

    name: str
    #: instructions between memory operations
    mem_interval: int
    #: probability an L1-missing load blocks the core until its reply
    dep_fraction: float
    #: probability of re-touching a recently used block (L1 locality)
    p_reuse: float
    #: recently-used blocks remembered
    reuse_window: int
    #: per-core footprint in 64 B blocks
    footprint_blocks: int
    #: Parsec input size used in the paper
    input_size: str = "medium"


#: Parsec benchmarks used in Table II.  dep_fraction ordering follows the
#: paper's latency-sensitivity observations (vips most sensitive, dedup
#: least).
CPU_BENCHMARKS: Dict[str, CpuBenchmarkProfile] = {
    "blackscholes": CpuBenchmarkProfile("blackscholes", 10, 0.35, 0.75, 96, 16384),
    "bodytrack": CpuBenchmarkProfile("bodytrack", 8, 0.45, 0.72, 96, 24576, "large"),
    "canneal": CpuBenchmarkProfile("canneal", 6, 0.70, 0.35, 48, 131072),
    "dedup": CpuBenchmarkProfile("dedup", 5, 0.15, 0.55, 64, 65536),
    "ferret": CpuBenchmarkProfile("ferret", 7, 0.50, 0.60, 64, 49152),
    "fluidanimate": CpuBenchmarkProfile("fluidanimate", 8, 0.40, 0.70, 96, 32768),
    "swaptions": CpuBenchmarkProfile("swaptions", 12, 0.30, 0.85, 128, 8192),
    "vips": CpuBenchmarkProfile("vips", 6, 0.80, 0.55, 64, 49152),
    "x264": CpuBenchmarkProfile("x264", 7, 0.55, 0.65, 80, 40960),
}

CPU_BENCHMARK_NAMES: List[str] = list(CPU_BENCHMARKS)


def cpu_benchmark(name: str) -> CpuBenchmarkProfile:
    """Look up a CPU benchmark profile by its Parsec name."""
    try:
        return CPU_BENCHMARKS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown CPU benchmark {name!r}; choose from {CPU_BENCHMARK_NAMES}"
        ) from None


class CpuTraceGenerator:
    """Per-core synthetic address stream for one CPU benchmark."""

    def __init__(
        self,
        profile: CpuBenchmarkProfile,
        core_index: int,
        seed: int = 42,
    ) -> None:
        self.profile = profile
        self.core_index = core_index
        self.rng = random.Random((seed * 15_485_863) ^ (core_index * 104_729))
        self._base = _CPU_REGION + core_index * (1 << 24)
        self._cursor = 0
        self._recent: List[int] = []
        self._recent_pos = 0

    def next_access(self) -> Tuple[int, bool]:
        """Next (64 B block, is_write) access.

        Parsec's traffic is read-dominated at the network level (stores
        mostly coalesce in the write buffer), so the generator issues
        reads; CPU write traffic is negligible in the paper's setup.
        """
        p = self.profile
        rng = self.rng
        if self._recent and rng.random() < p.p_reuse:
            block = self._recent[rng.randrange(len(self._recent))]
            return block, False
        if rng.random() < 0.7:
            self._cursor = (self._cursor + 1) % p.footprint_blocks
            off = self._cursor
        else:
            off = rng.randrange(p.footprint_blocks)
        block = self._base + off
        if len(self._recent) < p.reuse_window:
            self._recent.append(block)
        else:
            self._recent[self._recent_pos] = block
            self._recent_pos = (self._recent_pos + 1) % p.reuse_window
        return block, False

    def is_dependent(self) -> bool:
        """Whether the current L1-missing load blocks the pipeline."""
        return self.rng.random() < self.profile.dep_fraction
