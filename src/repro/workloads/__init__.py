"""Synthetic workloads standing in for the paper's benchmark traces."""

from repro.workloads.cpu import (
    CPU_BENCHMARK_NAMES,
    CPU_BENCHMARKS,
    CpuBenchmarkProfile,
    CpuTraceGenerator,
    cpu_benchmark,
)
from repro.workloads.gpu import (
    GPU_BENCHMARK_NAMES,
    GPU_BENCHMARKS,
    GpuBenchmarkProfile,
    GpuTraceGenerator,
    SharedWavefront,
    gpu_benchmark,
)
from repro.workloads.mixes import (
    TABLE_II,
    WorkloadMix,
    mixes_for_gpu,
    primary_mix,
    workload_mixes,
)

__all__ = [
    "CPU_BENCHMARKS",
    "CPU_BENCHMARK_NAMES",
    "CpuBenchmarkProfile",
    "CpuTraceGenerator",
    "GPU_BENCHMARKS",
    "GPU_BENCHMARK_NAMES",
    "GpuBenchmarkProfile",
    "GpuTraceGenerator",
    "SharedWavefront",
    "TABLE_II",
    "WorkloadMix",
    "cpu_benchmark",
    "gpu_benchmark",
    "mixes_for_gpu",
    "primary_mix",
    "workload_mixes",
]
