"""Synthetic GPU benchmark models (Table II).

The paper evaluates 11 GPU benchmarks from CUDA SDK, GPGPU-sim, Rodinia
and PolyBench whose traces are not redistributable.  Each benchmark is
replaced by a parameterised address-stream generator calibrated to the
paper's published per-benchmark characteristics:

* *inter-core locality* (Fig. 2: >57% of L1 misses present in a remote L1
  on average) comes from a shared *wavefront*: all cores stream through a
  shared read-only region with small per-core skew, so a block missed by
  one core was usually just touched — and is still cached — by another;
* *remote misses* (Fig. 14: frequent for 3DCON/BT/LPS) come from a skew
  that is large relative to the L1 residence time, so the pointer target
  has often already evicted the line;
* *L1 hit rate* comes from a per-core reuse window (NN's 4.3% miss rate
  needs a large one);
* *LLC-friendly benchmarks* (SC, LUD, BP) use mostly private footprints,
  so the core pointer equals the requester and few replies are delegatable;
* *write intensity* (BP) issues write-through traffic that stresses the
  request network and invalidates core pointers.

The absolute values are simulator-scale, but the cross-benchmark ordering
follows the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: distinct, non-overlapping 2^32-block address regions
_SHARED_REGION = 1 << 32
_PRIVATE_REGION = 2 << 32
_CPU_REGION = 3 << 32


@dataclass(frozen=True)
class GpuBenchmarkProfile:
    """Calibrated generator parameters for one GPU benchmark."""

    name: str
    suite: str
    grid_dim: Tuple[int, int, int]
    #: probability an access targets the shared wavefront region
    p_shared: float
    #: per-core lag (in blocks) around the global wavefront position
    skew: float
    #: wavefront blocks advanced per shared access (region churn)
    advance: float
    #: probability of re-touching a recently used block (L1 locality)
    p_reuse: float
    #: recently-used blocks remembered per core
    reuse_window: int
    #: per-core private footprint, in 128 B blocks
    private_blocks: int
    #: shared region size, in 128 B blocks
    shared_blocks: int
    #: fraction of memory operations that are writes
    write_fraction: float
    #: True if writes hit the shared region (kills core pointers, as in BP)
    writes_shared: bool
    #: non-memory instructions between memory operations (intensity knob)
    compute_gap: int
    #: probability a shared access revisits data the wavefront passed long
    #: ago.  The LLC still holds those blocks (and their core pointers) but
    #: the pointer target's L1 has usually evicted them — producing the
    #: *remote misses* of Fig. 14 (3DCON, BT, LPS).
    p_lag: float = 0.0
    #: how far behind the wavefront the revisit lands, in blocks
    lag_distance: float = 0.0
    #: warps actively issuing memory operations (None = all configured
    #: warps).  Models benchmarks like NN whose occupancy/miss pressure is
    #: far below the machine limit.
    active_warps: int = 0


def _p(name, suite, grid, p_shared, skew, advance, p_reuse, reuse_window,
       private_blocks, shared_blocks, write_fraction, writes_shared,
       compute_gap, p_lag=0.0, lag_distance=0.0,
       active_warps=0) -> GpuBenchmarkProfile:
    return GpuBenchmarkProfile(
        name, suite, grid, p_shared, skew, advance, p_reuse, reuse_window,
        private_blocks, shared_blocks, write_fraction, writes_shared,
        compute_gap, p_lag, lag_distance, active_warps,
    )


#: The 11 GPU benchmarks of Table II.  Comments note the published
#: behaviour each parameterisation targets.
GPU_BENCHMARKS: Dict[str, GpuBenchmarkProfile] = {
    # very high inter-core locality, >60% remote hits, DR +40.9%
    "2DCON": _p("2DCON", "PolyBench", (128, 512, 1),
                0.85, 24.0, 0.45, 0.30, 32, 2048, 4096, 0.05, False, 2),
    # high sharing but lagged revisits: many remote misses, DR +46.3%
    "3DCON": _p("3DCON", "PolyBench", (8, 32, 1),
                0.80, 30.0, 0.5, 0.25, 32, 2048, 4096, 0.06, False, 2,
                p_lag=0.50, lag_distance=1100.0),
    # streaming with lagged revisits: fair number of remote misses, DR +28.1%
    "BT": _p("BT", "Rodinia", (60000, 1, 1),
             0.70, 40.0, 0.6, 0.30, 32, 3072, 6144, 0.08, False, 3,
             p_lag=0.38, lag_distance=1400.0),
    # LLC-friendly, little sharing: few delegations, DR modest
    "SC": _p("SC", "Rodinia", (1954, 1, 1),
             0.25, 40.0, 0.5, 0.50, 36, 512, 1024, 0.10, False, 4),
    # the paper's best case: extreme locality, DR +67.9%
    "HS": _p("HS", "Rodinia", (342, 342, 1),
             0.92, 12.0, 0.35, 0.25, 32, 2048, 4096, 0.04, False, 2),
    # sharing with lagged revisits: remote misses, DR +17.5%
    "LPS": _p("LPS", "GPGPU-sim", (63, 500, 1),
              0.65, 35.0, 0.6, 0.35, 32, 2048, 4096, 0.07, False, 3,
              p_lag=0.35, lag_distance=1200.0),
    # small working set, high LLC hit rate: DR modest
    "LUD": _p("LUD", "Rodinia", (127, 127, 1),
              0.30, 32.0, 0.4, 0.55, 36, 384, 768, 0.08, False, 4),
    # large shared matrix tiles: solid locality
    "MM": _p("MM", "CUDA SDK", (1000, 2000, 1),
             0.75, 48.0, 0.6, 0.35, 32, 3072, 6144, 0.05, False, 3),
    # >60% remote hits but only a 4.3% L1 miss rate: DR +19.5%
    "NN": _p("NN", "GPGPU-sim", (6, 6000, 1),
             0.88, 16.0, 0.30, 0.93, 36, 1024, 2048, 0.03, False, 4,
             active_warps=10),
    # moderate locality stencil
    "SRAD": _p("SRAD", "Rodinia", (128, 128, 1),
               0.72, 60.0, 0.7, 0.35, 32, 2048, 4096, 0.08, False, 3),
    # write-heavy: stresses the request network, invalidates pointers
    "BP": _p("BP", "Rodinia", (1, 16384, 1),
             0.45, 64.0, 0.6, 0.35, 32, 1024, 2048, 0.42, True, 3),
}

GPU_BENCHMARK_NAMES: List[str] = list(GPU_BENCHMARKS)


def gpu_benchmark(name: str) -> GpuBenchmarkProfile:
    """Look up a GPU benchmark profile by its Table II name."""
    try:
        return GPU_BENCHMARKS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown GPU benchmark {name!r}; choose from {GPU_BENCHMARK_NAMES}"
        ) from None


class SharedWavefront:
    """Global position of the streaming sweep over the shared region.

    Shared by all the cores running one GPU benchmark; every shared access
    advances the front, so cores stay loosely in step — which is exactly
    what creates inter-core locality.
    """

    def __init__(self, profile: GpuBenchmarkProfile) -> None:
        self.profile = profile
        self.pos = 0.0

    def sample(self, rng: random.Random) -> int:
        p = self.profile
        self.pos += p.advance
        pos = self.pos
        if p.p_lag > 0.0 and rng.random() < p.p_lag:
            pos -= p.lag_distance
        offset = int(pos + rng.gauss(0.0, p.skew)) % p.shared_blocks
        return _SHARED_REGION + offset


class GpuTraceGenerator:
    """Per-core synthetic address stream for one GPU benchmark."""

    def __init__(
        self,
        profile: GpuBenchmarkProfile,
        core_index: int,
        wavefront: SharedWavefront,
        seed: int = 42,
    ) -> None:
        self.profile = profile
        self.core_index = core_index
        self.wavefront = wavefront
        self.rng = random.Random((seed * 1_000_003) ^ (core_index * 7_919))
        self._recent: List[int] = []
        self._recent_pos = 0
        self._private_base = _PRIVATE_REGION + core_index * (1 << 24)
        self._private_cursor = 0

    def next_access(self) -> Tuple[int, bool]:
        """Generate the next (block, is_write) access of this core."""
        p = self.profile
        rng = self.rng
        is_write = rng.random() < p.write_fraction
        if self._recent and rng.random() < p.p_reuse:
            block = self._recent[rng.randrange(len(self._recent))]
            if is_write and not p.writes_shared and block >= _SHARED_REGION * 2:
                pass  # private re-write: fine
            elif is_write and not p.writes_shared:
                is_write = False  # shared data is read-only for this bench
            return block, is_write
        if rng.random() < p.p_shared:
            block = self.wavefront.sample(rng)
            if is_write and not p.writes_shared:
                is_write = False
        else:
            # streaming private access with occasional random jumps
            if rng.random() < 0.8:
                self._private_cursor = (self._private_cursor + 1) % p.private_blocks
                off = self._private_cursor
            else:
                off = rng.randrange(p.private_blocks)
            block = self._private_base + off
        self._remember(block)
        return block, is_write

    def _remember(self, block: int) -> None:
        window = self.profile.reuse_window
        if len(self._recent) < window:
            self._recent.append(block)
        else:
            self._recent[self._recent_pos] = block
            self._recent_pos = (self._recent_pos + 1) % window
