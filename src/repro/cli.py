"""Shared command-line conventions for the ``repro.*`` CLIs.

Every entry point (``repro.bench``, ``repro.sweep``, ``repro.telemetry``,
``repro.faults``) spells the common flags identically by building them
through these helpers:

``--cycles N``   measured-window length
``--warmup N``   warmup length
``--jobs N``     worker processes
``--batch N``    sweep jobs per worker task (chunked submission)
``--out PATH``   primary output file
``--seed N``     override the config's RNG seed
``--format F``   human table vs machine JSON on stdout
``--backend B``  simulation engine (object | vector)

Renamed or historical spellings stay functional via
:func:`add_deprecated_alias`, which maps the old flag onto the canonical
destination with a one-line ``stderr`` warning per use.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Optional, Union

OUTPUT_FORMATS = ("table", "json")


def add_cycles_option(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help: str = "measured window in cycles "
    "(default: $REPRO_CYCLES or the command's built-in)",
) -> None:
    parser.add_argument("--cycles", type=int, default=default, help=help)


def add_warmup_option(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help: str = "warmup cycles before measurement "
    "(default: $REPRO_WARMUP or the command's built-in)",
) -> None:
    parser.add_argument("--warmup", type=int, default=default, help=help)


def add_window_options(
    parser: argparse.ArgumentParser,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> None:
    """The ``--cycles`` / ``--warmup`` pair every simulating CLI takes."""
    add_cycles_option(parser, default=cycles)
    add_warmup_option(parser, default=warmup)


def add_jobs_option(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help: str = "worker processes (default: $REPRO_SWEEP_JOBS or 1)",
) -> None:
    parser.add_argument("--jobs", type=int, default=default, help=help)


def add_batch_option(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help: str = "sweep jobs per worker task "
    "(default: $REPRO_SWEEP_BATCH or adaptive; 1 disables batching)",
) -> None:
    parser.add_argument("--batch", type=int, default=default, help=help)


def add_out_option(
    parser: argparse.ArgumentParser,
    default: Optional[str] = None,
    required: bool = False,
    help: str = "output file path",
) -> None:
    parser.add_argument(
        "--out", default=default, required=required, help=help
    )


def add_seed_option(
    parser: argparse.ArgumentParser,
    default: Optional[int] = None,
    help: str = "override the system config's RNG seed",
) -> None:
    parser.add_argument("--seed", type=int, default=default, help=help)


def add_format_option(
    parser: argparse.ArgumentParser,
    default: str = "table",
    help: str = "stdout format: human-readable table or machine JSON "
    "(default: %(default)s)",
) -> None:
    parser.add_argument(
        "--format", choices=OUTPUT_FORMATS, default=default, help=help
    )


def add_backend_option(
    parser: argparse.ArgumentParser,
    help: str = "simulation engine "
    "(default: $REPRO_BACKEND or the command's built-in)",
) -> None:
    from repro.sim.engines import available_backends

    parser.add_argument(
        "--backend", choices=available_backends(), default=None, help=help
    )


def backend_error_exit(exc: Exception) -> int:
    """One-line ``error:`` exit shared by every ``--backend`` CLI.

    Prints the :class:`~repro.sim.engines.BackendError` message to
    stderr (already a single line by contract) and returns the exit
    status for the caller to hand to ``sys.exit``.
    """
    print(f"error: {exc}", file=sys.stderr)
    return 2


def emit(
    fmt: str,
    payload: Any,
    render: Union[str, Callable[[], str]],
) -> None:
    """Print one command result honouring the ``--format`` choice.

    ``payload`` is the machine answer (anything ``json.dumps`` accepts);
    ``render`` is the human one — either the table string itself or a
    zero-argument callable producing it, so table formatting is only
    paid when the table was asked for.
    """
    if fmt == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render() if callable(render) else render)


def add_deprecated_alias(
    parser: argparse.ArgumentParser,
    old: str,
    new: str,
    **kwargs,
) -> None:
    """Register ``old`` as a hidden alias of the already-added ``new`` flag.

    Using the alias stores into ``new``'s destination and prints one
    deprecation line on stderr, so old invocations keep working while
    steering users to the canonical spelling.
    """
    dest = new.lstrip("-").replace("-", "_")

    class _Alias(argparse.Action):
        def __call__(self, _parser, namespace, values, option_string=None):
            print(
                f"warning: {option_string or old} is deprecated; "
                f"use {new}",
                file=sys.stderr,
            )
            setattr(namespace, dest, values)

    parser.add_argument(
        old, action=_Alias, dest=f"_deprecated{dest}",
        help=argparse.SUPPRESS, **kwargs,
    )
