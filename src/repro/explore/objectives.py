"""The explore subsystem's objective vector.

Every candidate design — whether scored by the analytical surrogate or by
the cycle-level simulator — is reduced to the same four objectives:

* ``cpu_latency_p95`` (min, cycles): the paper's victim metric; the tail
  CPU round-trip latency under GPU reply clogging.
* ``throughput`` (max, insts/cycle/core): per-GPU-core IPC, the work the
  accelerator actually gets done.
* ``area_mm2`` (min): the DSENT/CACTI-style NoC area from
  ``repro.analysis.area`` plus the Delegated Replies pointer+FRQ overhead
  when the mechanism pays for it.  Purely config-derived, so identical on
  the surrogate and simulated paths.
* ``energy_pj_per_inst`` (min): system energy per instruction.  Simulated
  points use the counter-based ``repro.analysis.energy`` report; surrogate
  points use the dominant static/IPC + dynamic terms of the same model
  (the NoC dynamic term needs flit-hop counters the surrogate does not
  produce — it is < 2% of system energy at these constants, and the
  omission is consistent across surrogate points so ranking is unaffected).

Keeping the vector identical across both paths is what lets the hybrid
screen promote surrogate points into simulation without changing the
geometry of the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.area import delegated_replies_overhead, noc_area
from repro.analysis.energy import (
    CLOCK_HZ,
    DYNAMIC_PJ_PER_INST,
    STATIC_POWER_W,
    energy_report,
)
from repro.config.system import Mechanism, SystemConfig
from repro.model.compose import Prediction
from repro.sim.metrics import SimulationResult

#: IPC floor when converting static power to per-instruction energy; a
#: fully clogged window would otherwise divide by zero.
_MIN_IPC = 1e-3


@dataclass(frozen=True)
class Objective:
    name: str
    sense: str  # "min" | "max"
    unit: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"name": self.name, "sense": self.sense, "unit": self.unit}


OBJECTIVES: Tuple[Objective, ...] = (
    Objective("cpu_latency_p95", "min", "cycles"),
    Objective("throughput", "max", "insts/cycle/core"),
    Objective("area_mm2", "min", "mm2"),
    Objective("energy_pj_per_inst", "min", "pJ/inst"),
)

OBJECTIVE_NAMES: Tuple[str, ...] = tuple(o.name for o in OBJECTIVES)
SENSES: Tuple[str, ...] = tuple(o.sense for o in OBJECTIVES)


def design_area_mm2(cfg: SystemConfig) -> float:
    """Total NoC area of a design, including the DR overhead it buys."""
    total = noc_area(cfg).total
    if cfg.mechanism is Mechanism.DELEGATED_REPLIES:
        total += delegated_replies_overhead(cfg)["total"]
    return total


def _static_energy_pj_per_inst(gpu_ipc: float, n_gpu: int) -> float:
    """Static power amortised over instructions retired per cycle.

    ``gpu_ipc`` is per-core; the chip retires ``gpu_ipc * n_gpu`` per
    cycle, and static power burns ``STATIC_POWER_W / CLOCK_HZ`` joules in
    that cycle regardless.
    """
    retired_per_cycle = max(_MIN_IPC, gpu_ipc * max(1, n_gpu))
    return STATIC_POWER_W / CLOCK_HZ * 1e12 / retired_per_cycle


def from_prediction(cfg: SystemConfig, pred: Prediction) -> Dict[str, float]:
    """Objective vector from a surrogate prediction (screening path)."""
    return {
        "cpu_latency_p95": float(pred.cpu_latency_p95),
        "throughput": float(pred.gpu_ipc),
        "area_mm2": design_area_mm2(cfg),
        "energy_pj_per_inst": _static_energy_pj_per_inst(
            pred.gpu_ipc, cfg.n_gpu
        )
        + DYNAMIC_PJ_PER_INST,
    }


def from_result(cfg: SystemConfig, result: SimulationResult) -> Dict[str, float]:
    """Objective vector from a simulation result (ground-truth path)."""
    return {
        "cpu_latency_p95": float(result.cpu_latency_p95),
        "throughput": float(result.gpu_ipc),
        "area_mm2": design_area_mm2(cfg),
        "energy_pj_per_inst": energy_report(result, cfg).system_pj_per_inst,
    }
