"""Multi-objective design-space exploration with a Pareto frontier.

The paper evaluates Delegated Replies as one point in a much larger
NoC/system design space; this subsystem turns the reproduction into the
design tool that searches that space.  The pieces:

* :mod:`repro.explore.space` — typed knob spaces over ``SystemConfig``
  (:class:`SearchSpace`, :class:`Knob`) with genome encode/decode.
* :mod:`repro.explore.objectives` — the shared objective vector
  (latency p95, throughput, DSENT/CACTI-style area, energy/inst).
* :mod:`repro.explore.pareto` — dominance, non-dominated sorting,
  crowding, hypervolume and the :class:`ParetoFrontier` container.
* :mod:`repro.explore.env` — :class:`ExploreEnv`, the gym-style
  environment over ``repro.api.simulate()``/``predict()``.
* :mod:`repro.explore.search` — seeded NSGA-II + random-search baseline
  and the hybrid :func:`explore` driver (surrogate-screen everything,
  simulate only frontier-band survivors through the sweep cache).

``python -m repro.explore {run,frontier,show}`` is the CLI face;
:func:`repro.api.explore` the library one.
"""

from repro.explore.env import EvalRecord, ExploreEnv
from repro.explore.objectives import OBJECTIVE_NAMES, OBJECTIVES, Objective
from repro.explore.pareto import (
    FrontierPoint,
    ParetoFrontier,
    crowding_distance,
    dominates,
    hypervolume,
    non_dominated_sort,
)
from repro.explore.search import (
    ALGORITHMS,
    ExploreOutcome,
    explore,
    nsga2_search,
    random_search,
)
from repro.explore.space import SPACES, Knob, SearchSpace, demo_space

__all__ = [
    "ALGORITHMS",
    "EvalRecord",
    "ExploreEnv",
    "ExploreOutcome",
    "FrontierPoint",
    "Knob",
    "OBJECTIVES",
    "OBJECTIVE_NAMES",
    "Objective",
    "ParetoFrontier",
    "SPACES",
    "SearchSpace",
    "crowding_distance",
    "demo_space",
    "dominates",
    "explore",
    "hypervolume",
    "non_dominated_sort",
    "nsga2_search",
    "random_search",
]
