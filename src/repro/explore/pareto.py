"""Pareto mechanics: dominance, non-dominated sorting, hypervolume.

Everything in this module is pure multi-objective bookkeeping — no
simulator, no search policy.  Objective vectors are plain sequences of
floats; each position has a *sense* ("min" or "max") that says which
direction is better.  Internally every comparison normalises to
minimisation (max objectives are negated) so the textbook definitions
apply unchanged.

The hypervolume indicator follows the slicing recursion (sweep the last
objective, recurse on the projection): exact, deterministic, and fast
enough for the front sizes design-space search produces (tens of points,
up to four objectives).  2D closed-form cases are pinned by unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

Vector = Sequence[float]

#: default nadir margin: the shared reference point sits 10% beyond the
#: worst observed value per objective, so boundary points contribute
#: nonzero volume.
REFERENCE_MARGIN = 0.1


def _signs(senses: Sequence[str]) -> Tuple[float, ...]:
    out = []
    for s in senses:
        if s not in ("min", "max"):
            raise ValueError(f"objective sense must be min or max, got {s!r}")
        out.append(1.0 if s == "min" else -1.0)
    return tuple(out)


def _minimised(vec: Vector, signs: Sequence[float]) -> Tuple[float, ...]:
    return tuple(v * s for v, s in zip(vec, signs))


def dominates(a: Vector, b: Vector, senses: Sequence[str]) -> bool:
    """True iff ``a`` Pareto-dominates ``b``.

    At least as good in every objective and strictly better in one.
    """
    signs = _signs(senses)
    am = _minimised(a, signs)
    bm = _minimised(b, signs)
    return all(x <= y for x, y in zip(am, bm)) and any(
        x < y for x, y in zip(am, bm)
    )


def non_dominated_sort(rows: Sequence[Vector], senses: Sequence[str]) -> List[List[int]]:
    """NSGA-II fast non-dominated sort: indices grouped into fronts.

    Front 0 is the Pareto frontier of ``rows``; front *k* is the frontier
    once fronts ``< k`` are removed.  Order within a front preserves the
    input order, keeping downstream selection deterministic.
    """
    signs = _signs(senses)
    pts = [_minimised(r, signs) for r in rows]
    n = len(pts)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    dom_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            a, b = pts[i], pts[j]
            a_le = all(x <= y for x, y in zip(a, b))
            b_le = all(y <= x for x, y in zip(a, b))
            if a_le and not b_le:
                dominated_by[i].append(j)
                dom_count[j] += 1
            elif b_le and not a_le:
                dominated_by[j].append(i)
                dom_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if dom_count[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                dom_count[j] -= 1
                if dom_count[j] == 0:
                    nxt.append(j)
        nxt.sort()
        current = nxt
    return fronts


def crowding_distance(rows: Sequence[Vector]) -> List[float]:
    """Crowding distance of each point within one front.

    Boundary points per objective get ``inf``; interior points the sum of
    normalised neighbour gaps.  Senses do not matter here — distance is
    symmetric under negation.
    """
    n = len(rows)
    if n == 0:
        return []
    if n <= 2:
        return [float("inf")] * n
    m = len(rows[0])
    dist = [0.0] * n
    for k in range(m):
        order = sorted(range(n), key=lambda i: (rows[i][k], i))
        lo, hi = rows[order[0]][k], rows[order[-1]][k]
        dist[order[0]] = dist[order[-1]] = float("inf")
        span = hi - lo
        if span <= 0.0:
            continue
        for pos in range(1, n - 1):
            i = order[pos]
            gap = rows[order[pos + 1]][k] - rows[order[pos - 1]][k]
            if dist[i] != float("inf"):
                dist[i] += gap / span
    return dist


def default_reference(
    rows: Sequence[Vector],
    senses: Sequence[str],
    margin: float = REFERENCE_MARGIN,
) -> Tuple[float, ...]:
    """A nadir-plus-margin reference point for :func:`hypervolume`.

    Per objective: the worst observed value pushed ``margin`` of the
    observed span (or of its own magnitude, for degenerate spans) further
    in the bad direction.  Computed over *all* evaluated points — not just
    a frontier — so two searches over the same space can share it.
    """
    if not rows:
        raise ValueError("cannot derive a reference point from no rows")
    signs = _signs(senses)
    pts = [_minimised(r, signs) for r in rows]
    ref = []
    for k in range(len(signs)):
        vals = [p[k] for p in pts]
        worst, best = max(vals), min(vals)
        span = worst - best
        pad = margin * (span if span > 0.0 else max(abs(worst), 1.0))
        ref.append((worst + pad) * signs[k])
    return tuple(ref)


def hypervolume(
    rows: Sequence[Vector],
    reference: Vector,
    senses: Sequence[str],
) -> float:
    """Exact hypervolume dominated by ``rows`` up to ``reference``.

    Points not strictly better than the reference in every objective
    contribute nothing.  For two objectives this reduces to the familiar
    staircase sum; higher dimensions use the slicing recursion.
    """
    signs = _signs(senses)
    ref = _minimised(reference, signs)
    pts = [_minimised(r, signs) for r in rows]
    return _hv(pts, ref)


def _hv(pts: List[Tuple[float, ...]], ref: Tuple[float, ...]) -> float:
    d = len(ref)
    pts = [p for p in pts if all(p[k] < ref[k] for k in range(d))]
    if not pts:
        return 0.0
    if d == 1:
        return ref[0] - min(p[0] for p in pts)
    # sweep the last objective from best to worst; each slab's depth times
    # the (d-1)-dimensional volume of every point at least that good.
    pts.sort(key=lambda p: p[-1])
    total = 0.0
    for i, p in enumerate(pts):
        upper = pts[i + 1][-1] if i + 1 < len(pts) else ref[-1]
        depth = upper - p[-1]
        if depth <= 0.0:
            continue
        total += depth * _hv([q[:-1] for q in pts[: i + 1]], ref[:-1])
    return total


# ---------------------------------------------------------------------------
# the frontier container
# ---------------------------------------------------------------------------


@dataclass
class FrontierPoint:
    """One design on (or considered for) the frontier."""

    config_hash: str
    gpu: str
    cpu: str
    mechanism: str
    #: knob name -> chosen value (the decoded genome).
    values: Dict[str, Any]
    #: objective name -> value, in the frontier's objective order.
    objectives: Dict[str, float]
    #: ``surrogate`` (scored by repro.model) or ``simulated``.
    source: str = "surrogate"
    #: sweep cache key when the point was simulated.
    job_key: Optional[str] = None
    #: headline metrics beyond the objectives (demand_rho, blocking, ...).
    metrics: Dict[str, float] = field(default_factory=dict)

    def vector(self, names: Sequence[str]) -> Tuple[float, ...]:
        return tuple(float(self.objectives[n]) for n in names)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config_hash": self.config_hash,
            "gpu": self.gpu,
            "cpu": self.cpu,
            "mechanism": self.mechanism,
            "values": dict(self.values),
            "objectives": dict(self.objectives),
            "source": self.source,
            "job_key": self.job_key,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FrontierPoint":
        return cls(
            config_hash=data["config_hash"],
            gpu=data["gpu"],
            cpu=data.get("cpu", ""),
            mechanism=data.get("mechanism", ""),
            values=dict(data.get("values", {})),
            objectives=dict(data["objectives"]),
            source=data.get("source", "surrogate"),
            job_key=data.get("job_key"),
            metrics=dict(data.get("metrics", {})),
        )


class ParetoFrontier:
    """A maintained non-dominated set of :class:`FrontierPoint`.

    ``insert`` keeps the set minimal: a new point is rejected if any
    member dominates it (or ties it exactly), and evicts every member it
    dominates.  Membership order is insertion order of the survivors, so
    a frontier built from a deterministic evaluation stream serialises
    identically run to run.
    """

    def __init__(
        self,
        objective_names: Sequence[str],
        senses: Sequence[str],
    ) -> None:
        if len(objective_names) != len(senses):
            raise ValueError("one sense per objective required")
        self.objective_names = tuple(objective_names)
        self.senses = tuple(senses)
        self._points: List[FrontierPoint] = []

    # -- content ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    @property
    def points(self) -> List[FrontierPoint]:
        return list(self._points)

    def insert(self, point: FrontierPoint) -> bool:
        """Offer a point; returns True iff it joined the frontier."""
        vec = point.vector(self.objective_names)
        survivors: List[FrontierPoint] = []
        for member in self._points:
            mvec = member.vector(self.objective_names)
            if dominates(mvec, vec, self.senses) or mvec == vec:
                return False
            if not dominates(vec, mvec, self.senses):
                survivors.append(member)
        survivors.append(point)
        self._points = survivors
        return True

    def extend(self, points: Sequence[FrontierPoint]) -> int:
        return sum(1 for p in points if self.insert(p))

    # -- indicators -------------------------------------------------------

    def vectors(self) -> List[Tuple[float, ...]]:
        return [p.vector(self.objective_names) for p in self._points]

    def hypervolume(self, reference: Optional[Vector] = None) -> float:
        """Hypervolume of the frontier; reference defaults to the
        members' own nadir plus margin (pass a shared reference to
        compare frontiers)."""
        rows = self.vectors()
        if not rows:
            return 0.0
        if reference is None:
            reference = default_reference(rows, self.senses)
        return hypervolume(rows, reference, self.senses)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objectives": [
                {"name": n, "sense": s}
                for n, s in zip(self.objective_names, self.senses)
            ],
            "points": [p.to_dict() for p in self._points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ParetoFrontier":
        objs = data["objectives"]
        front = cls(
            [o["name"] for o in objs], [o["sense"] for o in objs]
        )
        # points in a serialised frontier are already mutually
        # non-dominated; insert re-checks anyway (cheap, and tolerant of
        # hand-edited manifests)
        for p in data.get("points", []):
            front.insert(FrontierPoint.from_dict(p))
        return front
