"""Command-line face of the explore subsystem.

* ``run``      — execute one hybrid search and write a frontier manifest
* ``frontier`` — inspect a manifest (table/JSON); ``--compare`` scores two
  manifests' frontiers by hypervolume at a shared reference point
* ``show``     — describe a named search space (knobs, objectives,
  reference designs)

Examples::

    python -m repro.explore run --space mesh4x4 --budget 64 --seed 7 \\
        --out frontier.json
    python -m repro.explore run --space mesh4x4 --algo random \\
        --surrogate-only --format json
    python -m repro.explore frontier frontier.json
    python -m repro.explore frontier nsga2.json --compare random.json
    python -m repro.explore show --space mesh8x8
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.cli import (
    add_backend_option,
    add_batch_option,
    add_format_option,
    add_jobs_option,
    add_out_option,
    add_seed_option,
    add_window_options,
    backend_error_exit,
    emit,
)
from repro.explore.objectives import OBJECTIVE_NAMES, SENSES
from repro.explore.pareto import default_reference, hypervolume
from repro.explore.search import (
    ALGORITHMS,
    DEFAULT_BUDGET,
    DEFAULT_POPULATION,
    DEFAULT_SIM_FRACTION,
    explore,
)
from repro.explore.space import SPACES, demo_space


def _load_manifest(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if "frontier" not in data or "evaluations" not in data:
        raise ValueError(f"{path}: not an explore manifest")
    return data


def _frontier_rows(
    frontier: Dict[str, Any]
) -> List[Tuple[str, Dict[str, float]]]:
    rows = []
    points = sorted(
        frontier.get("points", []),
        key=lambda p: (
            p["objectives"].get("cpu_latency_p95", 0.0),
            p["config_hash"],
        ),
    )
    for p in points:
        mech = p.get("values", {}).get("mechanism", p.get("mechanism", ""))
        mark = "*" if p.get("source") == "simulated" else ""
        rows.append(
            (
                f"{mech}/{p.get('gpu', '?')}/{p['config_hash'][:8]}{mark}",
                dict(p["objectives"]),
            )
        )
    return rows


def _manifest_vectors(data: Dict[str, Any]) -> List[Tuple[float, ...]]:
    """Surrogate objective vectors of every evaluation in a manifest."""
    return [
        tuple(float(r["objectives"][n]) for n in OBJECTIVE_NAMES)
        for r in data.get("evaluations", [])
    ]


def _frontier_vectors(data: Dict[str, Any]) -> List[Tuple[float, ...]]:
    return [
        tuple(float(p["objectives"][n]) for n in OBJECTIVE_NAMES)
        for p in data["frontier"].get("points", [])
    ]


# --- commands --------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    progress = (
        (lambda msg: print(msg, file=sys.stderr))
        if args.format == "table"
        else None
    )
    outcome = explore(
        args.space,
        algo=args.algo,
        budget=args.budget,
        population=args.population,
        seed=args.seed if args.seed is not None else 0,
        surrogate_only=args.surrogate_only,
        sim_fraction=args.sim_fraction,
        jobs=args.jobs,
        batch=args.batch,
        cycles=args.cycles,
        warmup=args.warmup,
        cache=args.cache_dir if args.cache_dir else "auto",
        progress=progress,
        backend=args.backend,
    )
    manifest = outcome.manifest()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        if progress:
            progress(f"manifest written to {args.out}")

    def render() -> str:
        lines = [outcome.table()]
        dom = outcome.dr_dominance
        if dom is not None:
            verdict = "holds" if dom["holds"] else "does NOT hold"
            lines.append(
                f"DR-dominates-baseline ({', '.join(dom['objectives'])}, "
                f"{dom['tier']}, gpu {dom['gpu']}): {verdict} "
                f"({len(dom['dominating'])} dominating design(s))"
            )
        return "\n".join(lines)

    emit(args.format, manifest, render)
    return 0 if len(outcome.frontier) else 1


def cmd_frontier(args: argparse.Namespace) -> int:
    data = _load_manifest(args.manifest)
    meta = data.get("explore", {})
    payload: Dict[str, Any] = {
        "manifest": args.manifest,
        "explore": meta,
        "counts": data.get("counts", {}),
        "hypervolume": data.get("hypervolume"),
        "dr_dominance": data.get("dr_dominance"),
        "frontier": data["frontier"],
    }
    compare: Optional[Dict[str, Any]] = None
    if args.compare:
        other = _load_manifest(args.compare)
        # union reference so both frontiers are scored in the same box
        vectors = _manifest_vectors(data) + _manifest_vectors(other)
        if not vectors:
            raise ValueError("manifests carry no evaluations to compare")
        ref = default_reference(vectors, SENSES)
        hv_a = hypervolume(_frontier_vectors(data), ref, SENSES)
        hv_b = hypervolume(_frontier_vectors(other), ref, SENSES)
        compare = {
            "other": args.compare,
            "other_algo": other.get("explore", {}).get("algo"),
            "reference": dict(zip(OBJECTIVE_NAMES, ref)),
            "hypervolume": round(hv_a, 6),
            "other_hypervolume": round(hv_b, 6),
            "winner": args.manifest if hv_a > hv_b else (
                args.compare if hv_b > hv_a else "tie"
            ),
        }
        payload["compare"] = compare

    def render() -> str:
        title = (
            f"{meta.get('space', '?')} frontier "
            f"({meta.get('algo', '?')}, seed {meta.get('seed', '?')}, "
            f"hv {data.get('hypervolume')})"
        )
        out = format_table(
            title,
            _frontier_rows(data["frontier"]),
            columns=list(OBJECTIVE_NAMES),
            mean=None,
            label_header="design",
        )
        out += "(* = simulated ground truth)\n"
        if compare is not None:
            out += (
                f"\nshared-reference hypervolume: "
                f"{compare['hypervolume']:.6g} ({meta.get('algo')}) vs "
                f"{compare['other_hypervolume']:.6g} "
                f"({compare['other_algo']}) -> winner: {compare['winner']}\n"
            )
        return out

    emit(args.format, payload, render)
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    space = demo_space(args.space)
    desc = space.describe()
    desc["objectives"] = [
        {"name": n, "sense": s} for n, s in zip(OBJECTIVE_NAMES, SENSES)
    ]
    desc["reference_designs"] = [
        space.decode_dict(g)["values"] for g in space.reference_genomes()
    ]

    def render() -> str:
        lines = [
            f"space {desc['name']}: {desc['description']}",
            f"  mesh {desc['mesh']}, window {desc['cycles']}+{desc['warmup']} "
            f"cycles, {desc['size']} designs",
            "  objectives: "
            + ", ".join(f"{n} ({s})" for n, s in zip(OBJECTIVE_NAMES, SENSES)),
            "  knobs:",
        ]
        for k in desc["knobs"]:
            values = ", ".join(str(v) for v in k["values"])
            lines.append(
                f"    {k['name']:<28s} [{values}] "
                f"(default {k['default']}, -> {k['path']})"
            )
        lines.append("  reference designs:")
        for vals in desc["reference_designs"]:
            lines.append(
                "    "
                + ", ".join(f"{n}={v}" for n, v in vals.items())
            )
        return "\n".join(lines)

    emit(args.format, desc, render)
    return 0


# --- parser ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="multi-objective design-space exploration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one search, emit a frontier manifest")
    run.add_argument(
        "--space", choices=sorted(SPACES), default="mesh4x4",
        help="named search space (default: %(default)s)",
    )
    run.add_argument(
        "--algo", choices=ALGORITHMS, default="nsga2",
        help="search policy (default: %(default)s)",
    )
    run.add_argument(
        "--budget", type=int, default=DEFAULT_BUDGET,
        help="unique candidate evaluations (default: %(default)s)",
    )
    run.add_argument(
        "--population", type=int, default=DEFAULT_POPULATION,
        help="NSGA-II population size (default: %(default)s)",
    )
    run.add_argument(
        "--surrogate-only", action="store_true",
        help="skip simulation entirely; frontier from surrogate scores",
    )
    run.add_argument(
        "--sim-fraction", type=float, default=DEFAULT_SIM_FRACTION,
        help="max fraction of evaluated candidates promoted to "
        "simulation (default: %(default)s)",
    )
    run.add_argument(
        "--cache-dir", default=None,
        help="sweep result cache directory "
        "(default: $REPRO_SWEEP_CACHE, else no persistence)",
    )
    add_seed_option(run, help="search RNG seed (default: 0)")
    add_window_options(run)
    add_backend_option(run, help="simulation engine for the ground-truth "
                                 "promotions (surrogate scoring is "
                                 "backend-free)")
    add_jobs_option(run)
    add_batch_option(run)
    add_out_option(run, help="write the frontier manifest JSON here")
    add_format_option(run)
    run.set_defaults(func=cmd_run)

    frontier = sub.add_parser(
        "frontier", help="inspect or compare frontier manifests"
    )
    frontier.add_argument("manifest", help="explore manifest JSON path")
    frontier.add_argument(
        "--compare", default=None,
        help="second manifest; score both frontiers at a shared reference",
    )
    add_format_option(frontier)
    frontier.set_defaults(func=cmd_frontier)

    show = sub.add_parser("show", help="describe a named search space")
    show.add_argument(
        "--space", choices=sorted(SPACES), default="mesh4x4",
        help="named search space (default: %(default)s)",
    )
    add_format_option(show)
    show.set_defaults(func=cmd_show)
    return parser


def main(argv=None) -> int:
    from repro.sim.engines import BackendError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BackendError as exc:
        return backend_error_exit(exc)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
