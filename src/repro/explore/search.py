"""Seeded multi-objective search over an :class:`ExploreEnv`.

Two policies at the same evaluation budget:

* :func:`nsga2_search` — an NSGA-II-style evolutionary loop: fast
  non-dominated sort + crowding distance for environmental selection,
  binary tournaments under the crowded-comparison operator, uniform
  crossover and per-knob mutation.
* :func:`random_search` — the honesty baseline; any frontier the
  evolutionary loop claims must beat uniform sampling at equal budget
  (the CI smoke gate checks exactly this).

Both draw every random number from one ``random.Random(seed)``, so a
search is a pure function of ``(space, seed, budget, ...)`` — rerunning
one reproduces the identical evaluation stream and frontier manifest.

:func:`explore` is the hybrid driver and the subsystem's main entry
point: it surrogate-scores every candidate the policy proposes
(milliseconds each), then promotes only the frontier-band survivors —
capped at ``sim_fraction`` of the evaluated designs — into cycle-level
simulation via ``SweepRunner``, riding the content-addressed result
cache so promoted jobs are bit-identical to (and shared with) ordinary
sweeps and resumable after interruption.  The mechanism reference
designs (baseline/DR at default provisioning, highest injection) are
always promoted, so every manifest carries the paper's headline
baseline-vs-DR comparison.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.explore.env import EvalRecord, ExploreEnv
from repro.explore.objectives import OBJECTIVE_NAMES, OBJECTIVES, SENSES, from_result
from repro.explore.pareto import (
    FrontierPoint,
    ParetoFrontier,
    crowding_distance,
    default_reference,
    dominates,
    hypervolume,
    non_dominated_sort,
)
from repro.explore.space import Genome, SearchSpace, demo_space
from repro.sim.engines import resolve_backend
from repro.sweep.cache import ENV_CACHE_DIR, ResultCache
from repro.sweep.runner import SweepRunner, stall_shares

ALGORITHMS = ("nsga2", "random")
DEFAULT_BUDGET = 64
DEFAULT_POPULATION = 16
#: ceiling on the simulated share of evaluated candidates (the hybrid
#: screen's whole point); the acceptance gate checks <= 0.20.
DEFAULT_SIM_FRACTION = 0.2

_RecordKey = Tuple[str, str]  # (config_hash, gpu)

ProgressFn = Callable[[str], None]


def _record_key(r: EvalRecord) -> _RecordKey:
    return (r.config_hash, r.gpu)


class _Evaluator:
    """Orders the env's memoised evaluations into a unique stream."""

    def __init__(self, env: ExploreEnv) -> None:
        self.env = env
        self.ordered: Dict[_RecordKey, EvalRecord] = {}

    def __call__(self, genome: Genome) -> EvalRecord:
        record = self.env.evaluate(genome)
        self.ordered.setdefault(_record_key(record), record)
        return record

    @property
    def count(self) -> int:
        return len(self.ordered)

    def records(self) -> List[EvalRecord]:
        return list(self.ordered.values())


def _history_entry(
    generation: int, records: Sequence[EvalRecord]
) -> Dict[str, Any]:
    """Progress snapshot: surrogate-frontier hypervolume so far."""
    vectors = [
        tuple(r.objectives[n] for n in OBJECTIVE_NAMES) for r in records
    ]
    fronts = non_dominated_sort(vectors, SENSES)
    front0 = fronts[0] if fronts else []
    ref = default_reference(vectors, SENSES)
    hv = hypervolume([vectors[i] for i in front0], ref, SENSES)
    return {
        "generation": generation,
        "evaluations": len(records),
        "frontier_size": len(front0),
        "hypervolume": round(hv, 6),
    }


def _initial_population(
    space: SearchSpace, rng: random.Random, population: int
) -> List[Genome]:
    """Reference anchors first, then unique random genomes."""
    pop: List[Genome] = []
    seen = set()
    for g in space.reference_genomes():
        if g not in seen:
            seen.add(g)
            pop.append(g)
    attempts = 0
    while len(pop) < population and attempts < population * 50:
        attempts += 1
        g = space.random_genome(rng)
        if g not in seen:
            seen.add(g)
            pop.append(g)
    return pop


def _rank_population(
    genomes: Sequence[Genome], ev: _Evaluator
) -> Dict[Genome, Tuple[int, float]]:
    """Genome -> (front index, crowding distance) on surrogate objectives."""
    vectors = [
        tuple(ev(g).objectives[n] for n in OBJECTIVE_NAMES) for g in genomes
    ]
    ranks: Dict[Genome, Tuple[int, float]] = {}
    for front_idx, front in enumerate(non_dominated_sort(vectors, SENSES)):
        crowd = crowding_distance([vectors[i] for i in front])
        for i, d in zip(front, crowd):
            ranks[genomes[i]] = (front_idx, d)
    return ranks


def _tournament(
    rng: random.Random,
    genomes: Sequence[Genome],
    ranks: Dict[Genome, Tuple[int, float]],
) -> Genome:
    """Binary tournament under the crowded-comparison operator."""
    a, b = rng.choice(genomes), rng.choice(genomes)
    fa, da = ranks[a]
    fb, db = ranks[b]
    if fa != fb:
        return a if fa < fb else b
    if da != db:
        return a if da > db else b
    return a


def nsga2_search(
    env: ExploreEnv,
    *,
    budget: int = DEFAULT_BUDGET,
    population: int = DEFAULT_POPULATION,
    seed: int = 0,
    mutation_rate: Optional[float] = None,
    crossover_rate: float = 0.9,
) -> Tuple[List[EvalRecord], List[Dict[str, Any]]]:
    """NSGA-II over the env's space until ``budget`` unique evaluations.

    Returns the evaluated records in first-seen order plus a
    per-generation history (evaluations, frontier size, hypervolume).
    """
    rng = random.Random(seed)
    space = env.space
    ev = _Evaluator(env)

    pop = _initial_population(space, rng, population)
    known: set = set()  # genomes evaluated within the budget
    for g in pop:
        if ev.count >= budget:
            break
        ev(g)
        known.add(g)
    pop = [g for g in pop if g in known]
    history = [_history_entry(0, ev.records())]

    generation = 0
    stall_rounds = 0
    while ev.count < budget and stall_rounds < 5:
        generation += 1
        ranks = _rank_population(pop, ev)
        offspring: List[Genome] = []
        for _ in range(population):
            p1 = _tournament(rng, pop, ranks)
            p2 = _tournament(rng, pop, ranks)
            child = (
                space.crossover(p1, p2, rng)
                if rng.random() < crossover_rate
                else p1
            )
            child = space.mutate(child, rng, mutation_rate)
            # walk duplicates away from already-evaluated genomes so the
            # budget is spent on novel near-frontier designs instead of
            # memo hits (bounded, so exhausted basins still terminate)
            tries = 0
            while child in known and tries < 8:
                child = space.mutate(child, rng, rate=0.5)
                tries += 1
            offspring.append(child)

        before = ev.count
        for g in offspring:
            if g in known:
                continue
            if ev.count >= budget:
                break
            ev(g)
            known.add(g)
        # a whole generation of duplicates means the space (or this
        # basin) is exhausted; stop instead of spinning on the memo
        stall_rounds = stall_rounds + 1 if ev.count == before else 0

        # environmental selection over parents + offspring, deduplicated
        # by decoded design so inert-gene twins can't crowd the pool;
        # offspring the budget guard skipped never joined `known` and are
        # excluded, so selection cannot trigger fresh evaluations
        union: List[Genome] = []
        seen_keys = set()
        for g in list(pop) + [g for g in offspring if g in known]:
            key = _record_key(ev(g))
            if key not in seen_keys:
                seen_keys.add(key)
                union.append(g)
        vectors = [
            tuple(ev(g).objectives[n] for n in OBJECTIVE_NAMES)
            for g in union
        ]
        next_pop: List[Genome] = []
        for front in non_dominated_sort(vectors, SENSES):
            if len(next_pop) + len(front) <= population:
                next_pop.extend(union[i] for i in front)
            else:
                crowd = crowding_distance([vectors[i] for i in front])
                order = sorted(
                    range(len(front)), key=lambda j: (-crowd[j], front[j])
                )
                room = population - len(next_pop)
                next_pop.extend(union[front[j]] for j in order[:room])
                break
        pop = next_pop
        history.append(_history_entry(generation, ev.records()))

    return ev.records(), history


def random_search(
    env: ExploreEnv,
    *,
    budget: int = DEFAULT_BUDGET,
    population: int = DEFAULT_POPULATION,
    seed: int = 0,
) -> Tuple[List[EvalRecord], List[Dict[str, Any]]]:
    """Uniform random sampling at the same budget (the control arm).

    Includes the same reference anchors as :func:`nsga2_search` so the
    two arms stay comparable point-for-point; ``population`` only sets
    the history snapshot granularity.
    """
    rng = random.Random(seed)
    space = env.space
    ev = _Evaluator(env)
    for g in space.reference_genomes():
        if ev.count >= budget:
            break
        ev(g)
    history = [_history_entry(0, ev.records())]
    attempts = 0
    chunk = 0
    while ev.count < budget and attempts < budget * 50:
        attempts += 1
        ev(space.random_genome(rng))
        if ev.count // population > chunk:
            chunk = ev.count // population
            history.append(_history_entry(chunk, ev.records()))
    if history[-1]["evaluations"] != ev.count:
        history.append(_history_entry(chunk + 1, ev.records()))
    return ev.records(), history


# ---------------------------------------------------------------------------
# the hybrid surrogate-screen + simulate driver
# ---------------------------------------------------------------------------


@dataclass
class ExploreOutcome:
    """Everything one exploration produced, manifest-ready."""

    space: str
    algo: str
    seed: int
    budget: int
    population: int
    cycles: int
    warmup: int
    backend: str
    surrogate_only: bool
    sim_fraction: float
    records: List[EvalRecord]
    frontier: ParetoFrontier
    surrogate_frontier: ParetoFrontier
    history: List[Dict[str, Any]] = field(default_factory=list)
    simulated: int = 0
    cached: int = 0
    failed: int = 0
    reference: Dict[str, float] = field(default_factory=dict)
    hypervolume: float = 0.0
    dr_dominance: Optional[Dict[str, Any]] = None
    wall_time_s: float = 0.0

    @property
    def evaluated(self) -> int:
        return len(self.records)

    @property
    def screened_out(self) -> int:
        return self.evaluated - self.simulated

    def best(self) -> Optional[FrontierPoint]:
        """The frontier point with the best victim metric (latency p95)."""
        points = self.frontier.points
        if not points:
            return None
        return min(
            points,
            key=lambda p: (p.objectives["cpu_latency_p95"], p.config_hash),
        )

    def manifest(self) -> Dict[str, Any]:
        return {
            "schema": "explore-v1",
            "explore": {
                "space": self.space,
                "algo": self.algo,
                "seed": self.seed,
                "budget": self.budget,
                "population": self.population,
                "cycles": self.cycles,
                "warmup": self.warmup,
                "backend": self.backend,
                "surrogate_only": self.surrogate_only,
                "sim_fraction": self.sim_fraction,
            },
            "counts": {
                "evaluated": self.evaluated,
                "simulated": self.simulated,
                "screened_out": self.screened_out,
                "cached": self.cached,
                "failed": self.failed,
            },
            "objectives": [o.to_dict() for o in OBJECTIVES],
            "reference": {k: round(v, 6) for k, v in self.reference.items()},
            "hypervolume": round(self.hypervolume, 6),
            "dr_dominance": self.dr_dominance,
            "history": self.history,
            "frontier": self.frontier.to_dict(),
            "surrogate_frontier": self.surrogate_frontier.to_dict(),
            "evaluations": [r.to_dict() for r in self.records],
            "wall_time_s": round(self.wall_time_s, 3),
        }

    def table(self) -> str:
        rows = []
        for p in sorted(
            self.frontier.points,
            key=lambda p: (p.objectives["cpu_latency_p95"], p.config_hash),
        ):
            mech = p.values.get("mechanism", p.mechanism)
            mark = "*" if p.source == "simulated" else ""
            rows.append(
                (
                    f"{mech}/{p.gpu}/{p.config_hash[:8]}{mark}",
                    dict(p.objectives),
                )
            )
        title = (
            f"{self.space} frontier ({self.algo}, seed {self.seed}, "
            f"{self.evaluated} evaluated / {self.simulated} simulated, "
            f"hv {self.hypervolume:.4g})"
        )
        table = format_table(
            title,
            rows,
            columns=list(OBJECTIVE_NAMES),
            mean=None,
            label_header="design",
        )
        return table + "(* = simulated ground truth)\n"


def _resolve_cache(
    cache: Union[ResultCache, str, None]
) -> Optional[ResultCache]:
    if cache == "auto":
        return ResultCache() if os.environ.get(ENV_CACHE_DIR) else None
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _select_survivors(
    records: Sequence[EvalRecord],
    anchors: Sequence[_RecordKey],
    max_sims: int,
) -> List[EvalRecord]:
    """Frontier-band selection of candidates worth cycle-level truth.

    Anchors first, then the non-dominated-sort fronts of the surrogate
    objectives, best front outward, each front ordered by crowding
    distance so the promoted band spreads along the frontier instead of
    clustering.
    """
    chosen: List[EvalRecord] = []
    chosen_keys = set()
    by_key = {_record_key(r): r for r in records}
    for key in anchors:
        r = by_key.get(key)
        if r is not None and key not in chosen_keys:
            chosen_keys.add(key)
            chosen.append(r)
    vectors = [
        tuple(r.objectives[n] for n in OBJECTIVE_NAMES) for r in records
    ]
    for front in non_dominated_sort(vectors, SENSES):
        if len(chosen) >= max_sims:
            break
        crowd = crowding_distance([vectors[i] for i in front])
        order = sorted(range(len(front)), key=lambda j: (-crowd[j], front[j]))
        for j in order:
            if len(chosen) >= max_sims:
                break
            r = records[front[j]]
            key = _record_key(r)
            if key not in chosen_keys:
                chosen_keys.add(key)
                chosen.append(r)
    return chosen


def _dr_dominance(
    records: Sequence[EvalRecord],
    baseline_key: Optional[_RecordKey],
    simulated_tier: bool,
) -> Optional[Dict[str, Any]]:
    """Does some DR design dominate the reference baseline on
    (latency p95, throughput) at the anchor's (high) injection level?"""
    if simulated_tier:
        pool = [r for r in records if r.sim_objectives is not None]
    else:
        pool = list(records)
    base = next(
        (r for r in pool if _record_key(r) == baseline_key), None
    )
    if base is None:
        return None
    names = ("cpu_latency_p95", "throughput")
    senses = ("min", "max")
    bvec = tuple(base.final_objectives[n] for n in names)
    dominating = [
        r.config_hash
        for r in pool
        if r.mechanism == "delegated_replies"
        and r.gpu == base.gpu
        and dominates(
            tuple(r.final_objectives[n] for n in names), bvec, senses
        )
    ]
    return {
        "objectives": list(names),
        "gpu": base.gpu,
        "tier": "simulated" if simulated_tier else "surrogate",
        "baseline": {
            "config_hash": base.config_hash,
            **{n: round(float(base.final_objectives[n]), 6) for n in names},
        },
        "dominating": dominating,
        "holds": bool(dominating),
    }


def explore(
    space: Union[str, SearchSpace] = "mesh4x4",
    *,
    algo: str = "nsga2",
    budget: int = DEFAULT_BUDGET,
    population: int = DEFAULT_POPULATION,
    seed: int = 0,
    surrogate_only: bool = False,
    sim_fraction: float = DEFAULT_SIM_FRACTION,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    cache: Union[ResultCache, str, None] = "auto",
    progress: Optional[ProgressFn] = None,
    backend: Optional[str] = None,
) -> ExploreOutcome:
    """Run one hybrid design-space exploration; see module docstring.

    ``cache="auto"`` follows the ``run_sweep`` convention: persist to
    disk only when ``REPRO_SWEEP_CACHE`` is set.  With
    ``surrogate_only`` no simulation happens and the frontier is built
    from surrogate scores alone (the CI smoke mode).
    """
    t0 = time.perf_counter()
    space = demo_space(space) if isinstance(space, str) else space
    if algo not in ALGORITHMS:
        raise ValueError(f"unknown algo {algo!r}; choose from {ALGORITHMS}")
    env = ExploreEnv(space, cycles=cycles, warmup=warmup, backend=backend)

    if progress:
        progress(
            f"{space.name}: {algo} search, budget {budget} "
            f"(space size {space.size})"
        )
    if algo == "nsga2":
        records, history = nsga2_search(
            env, budget=budget, population=population, seed=seed
        )
    else:
        records, history = random_search(
            env, budget=budget, population=population, seed=seed
        )

    surrogate_frontier = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
    surrogate_frontier.extend([r.frontier_point() for r in records])

    anchor_keys = [
        _record_key(env.evaluate(g)) for g in space.reference_genomes()
    ]
    baseline_key = next(
        (
            _record_key(r)
            for g in space.reference_genomes()
            for r in [env.evaluate(g)]
            if r.mechanism == "baseline"
        ),
        None,
    )

    simulated = cached = failed = 0
    if not surrogate_only:
        max_sims = max(len(anchor_keys), int(sim_fraction * len(records)))
        max_sims = min(max_sims, len(records))
        survivors = _select_survivors(records, anchor_keys, max_sims)
        specs = {_record_key(r): env.spec(r.genome) for r in survivors}
        if progress:
            progress(
                f"simulating {len(survivors)}/{len(records)} survivors "
                f"(cap {sim_fraction:.0%})"
            )
        runner = SweepRunner(
            cache=_resolve_cache(cache), jobs=jobs, batch=batch
        )
        try:
            outcomes = runner.run(list(specs.values()))
        finally:
            runner.close()
        for r in survivors:
            spec = specs[_record_key(r)]
            out = outcomes.get(spec.key())
            if out is None or out.result is None:
                failed += 1
                continue
            cfg = spec.system_config()
            r.sim_objectives = from_result(cfg, out.result)
            r.sim_metrics = {
                "cpu_latency_avg": out.result.cpu_latency_avg,
                "gpu_latency_p95": out.result.gpu_latency_p95,
                "mem_blocking_rate": out.result.mem_blocking_rate,
            }
            for group, shares in stall_shares(
                out.result.stall_breakdown
            ).items():
                for cls, share in shares.items():
                    r.sim_metrics[f"stall_share.{group}.{cls}"] = share
            r.cached = out.status == "cached"
            simulated += 1
            cached += int(r.cached)

    tier = [r for r in records if r.sim_objectives is not None]
    frontier = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
    if surrogate_only or not tier:
        frontier.extend([r.frontier_point() for r in records])
    else:
        frontier.extend([r.frontier_point() for r in tier])

    # the reference point spans every evaluation (surrogate values, which
    # every record has), so frontiers from different runs over the same
    # space can be compared after unioning their evaluation sets
    all_vectors = [
        tuple(r.objectives[n] for n in OBJECTIVE_NAMES) for r in records
    ]
    ref_vec = default_reference(all_vectors, SENSES)
    reference = dict(zip(OBJECTIVE_NAMES, ref_vec))
    hv = hypervolume(frontier.vectors(), ref_vec, SENSES)

    dr_dom = _dr_dominance(
        records, baseline_key, simulated_tier=bool(tier) and not surrogate_only
    )

    return ExploreOutcome(
        space=space.name,
        algo=algo,
        seed=seed,
        budget=budget,
        population=population,
        cycles=env.cycles,
        warmup=env.warmup,
        backend=resolve_backend(backend),
        surrogate_only=surrogate_only,
        sim_fraction=sim_fraction,
        records=records,
        frontier=frontier,
        surrogate_frontier=surrogate_frontier,
        history=history,
        simulated=simulated,
        cached=cached,
        failed=failed,
        reference=reference,
        hypervolume=hv,
        dr_dominance=dr_dom,
        wall_time_s=time.perf_counter() - t0,
    )
