"""Typed knob spaces over :class:`SystemConfig` for design-space search.

A :class:`SearchSpace` declares an ordered tuple of :class:`Knob`\\ s, each
with a discrete value list and a target — either a dotted path into
``SystemConfig`` (``noc.vcs_per_port``) or one of the special targets:

* ``mechanism`` — reply-delivery mechanism (sets the enable flags the way
  ``repro.experiments.common.mechanism_config`` does),
* ``mesh`` — mesh size preset (width/height plus the matching GPU/CPU/MEM
  node mix, since the fabric must be exactly filled),
* ``gpu`` — the GPU workload, i.e. the injection intensity of the search
  point; the CPU co-runner follows Table II.

A *genome* is a tuple of value indices, one per knob — the action type of
:class:`repro.explore.env.ExploreEnv` and the unit the evolutionary
operators (mutation, crossover) act on.  ``decode`` turns a genome into a
concrete ``(SystemConfig, gpu, cpu)`` triple and canonicalises unexpressed
knobs (delegation thresholds under a baseline mechanism, probe width under
non-RP) back to their defaults, so genomes that differ only in inert genes
collapse to one config hash and share one surrogate memo / sweep cache
entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config.system import (
    DelegationConfig,
    Mechanism,
    ProbingConfig,
    SystemConfig,
    Topology,
)

#: mesh presets: width, height, and the node mix that fills the fabric
#: (GPU-heavy ~62/25/12% split, matching Table I's 40/16/8 on 8x8).
MESH_MIXES: Dict[str, Tuple[int, int, int, int, int]] = {
    "4x4": (4, 4, 10, 4, 2),
    "8x8": (8, 8, 40, 16, 8),
}

_MECHANISMS = {
    "baseline": Mechanism.BASELINE,
    "dr": Mechanism.DELEGATED_REPLIES,
    "rp": Mechanism.REALISTIC_PROBING,
}

Genome = Tuple[int, ...]


@dataclass(frozen=True)
class Knob:
    """One discrete design knob."""

    name: str
    values: Tuple[Any, ...]
    #: dotted ``SystemConfig`` path, or ``mechanism`` / ``mesh`` / ``gpu``.
    path: str
    #: the default value (reference designs use it); first value if unset.
    default: Any = None

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ValueError(f"knob {self.name!r} needs >= 2 values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} has duplicate values")
        if self.default is not None and self.default not in self.values:
            raise ValueError(
                f"knob {self.name!r} default {self.default!r} not in values"
            )

    @property
    def default_index(self) -> int:
        if self.default is None:
            return 0
        return self.values.index(self.default)


def _set_path(cfg: SystemConfig, path: str, value: Any) -> None:
    obj: Any = cfg
    parts = path.split(".")
    for part in parts[:-1]:
        obj = getattr(obj, part)
    if not hasattr(obj, parts[-1]):
        raise AttributeError(f"config has no field {path!r}")
    setattr(obj, parts[-1], value)


def _apply_mesh(cfg: SystemConfig, preset: str) -> None:
    try:
        w, h, g, c, m = MESH_MIXES[preset]
    except KeyError:
        raise ValueError(
            f"unknown mesh preset {preset!r}; choose from {sorted(MESH_MIXES)}"
        ) from None
    cfg.mesh_width, cfg.mesh_height = w, h
    cfg.n_gpu, cfg.n_cpu, cfg.n_mem = g, c, m


def _apply_mechanism(cfg: SystemConfig, value: str) -> None:
    try:
        cfg.mechanism = _MECHANISMS[value]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {value!r}; choose from {sorted(_MECHANISMS)}"
        ) from None
    cfg.delegation.enabled = cfg.mechanism is Mechanism.DELEGATED_REPLIES
    cfg.probing.enabled = cfg.mechanism is Mechanism.REALISTIC_PROBING


@dataclass
class SearchSpace:
    """An ordered, finite knob space with genome encode/decode."""

    name: str
    knobs: Tuple[Knob, ...]
    description: str = ""
    #: mesh preset applied before the knobs (a ``mesh`` knob overrides it).
    mesh: str = "8x8"
    #: workload when the space has no ``gpu`` knob.
    gpu: str = "SC"
    #: simulation window for promoted candidates; the mesh4x4 spaces
    #: default long (see repro.model.validate.grid_specs) because the
    #: small mesh's clog develops slowly.
    cycles: int = 3000
    warmup: int = 2000
    _by_name: Dict[str, int] = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate knob names")
        self._by_name = {k.name: i for i, k in enumerate(self.knobs)}
        # fail fast on bad dotted paths / presets: decode the default genome
        self.decode(self.default_genome())

    # -- shape ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.knobs)

    @property
    def size(self) -> int:
        """Cardinality of the raw genome space."""
        total = 1
        for k in self.knobs:
            total *= len(k.values)
        return total

    def knob(self, name: str) -> Knob:
        return self.knobs[self._by_name[name]]

    # -- genome <-> values ------------------------------------------------

    def default_genome(self) -> Genome:
        return tuple(k.default_index for k in self.knobs)

    def values(self, genome: Genome) -> Dict[str, Any]:
        """Knob name -> chosen value, in knob order."""
        self._check(genome)
        return {k.name: k.values[g] for k, g in zip(self.knobs, genome)}

    def encode(self, values: Dict[str, Any]) -> Genome:
        """Inverse of :meth:`values`; unmentioned knobs take their default."""
        genome = list(self.default_genome())
        for name, value in values.items():
            if name not in self._by_name:
                raise KeyError(f"space {self.name!r} has no knob {name!r}")
            i = self._by_name[name]
            try:
                genome[i] = self.knobs[i].values.index(value)
            except ValueError:
                raise ValueError(
                    f"knob {name!r} has no value {value!r}"
                ) from None
        return tuple(genome)

    def _check(self, genome: Genome) -> None:
        if len(genome) != len(self.knobs):
            raise ValueError(
                f"genome length {len(genome)} != {len(self.knobs)} knobs"
            )
        for k, g in zip(self.knobs, genome):
            if not 0 <= g < len(k.values):
                raise ValueError(f"gene {g} out of range for knob {k.name!r}")

    # -- genome -> config -------------------------------------------------

    def decode(self, genome: Genome) -> Tuple[SystemConfig, str, str]:
        """Decode a genome into ``(config, gpu, cpu)``.

        Special knobs apply first (mesh preset, mechanism), then dotted
        paths; finally inert sections are canonicalised (see module
        docstring) and the node mix is re-validated.
        """
        from repro.experiments.common import cpu_corunners

        vals = self.values(genome)
        cfg = SystemConfig() if self.mesh == "8x8" else _mesh_config(self.mesh)
        gpu = self.gpu
        dotted: List[Tuple[str, Any]] = []
        for k in self.knobs:
            v = vals[k.name]
            if k.path == "mesh":
                _apply_mesh(cfg, v)
            elif k.path == "gpu":
                gpu = v
            else:
                dotted.append((k.path, v))
        for k in self.knobs:
            if k.path == "mechanism":
                _apply_mechanism(cfg, vals[k.name])
        for path, v in dotted:
            if path == "mechanism":
                continue
            _set_path(cfg, path, v)
        # canonicalise sections the chosen mechanism never reads, so inert
        # gene differences cannot fork config hashes / cache entries
        if cfg.mechanism is not Mechanism.DELEGATED_REPLIES:
            cfg.delegation = DelegationConfig(enabled=False)
        if cfg.mechanism is not Mechanism.REALISTIC_PROBING:
            cfg.probing = ProbingConfig(enabled=False)
        cfg.__post_init__()  # re-validate the node mix after mutation
        return cfg, gpu, cpu_corunners(gpu, 1)[0]

    def decode_dict(self, genome: Genome) -> Dict[str, Any]:
        """Genome as a portable dict: full config plus workload pair."""
        cfg, gpu, cpu = self.decode(genome)
        return {
            "config": cfg.to_dict(),
            "config_hash": cfg.config_hash(),
            "gpu": gpu,
            "cpu": cpu,
            "values": self.values(genome),
        }

    # -- evolutionary operators ------------------------------------------

    def random_genome(self, rng) -> Genome:
        return tuple(rng.randrange(len(k.values)) for k in self.knobs)

    def mutate(
        self, genome: Genome, rng, rate: Optional[float] = None
    ) -> Genome:
        """Per-knob mutation: each gene flips to a *different* value with
        probability ``rate`` (default 1/n_knobs)."""
        self._check(genome)
        rate = 1.0 / len(self.knobs) if rate is None else rate
        out = list(genome)
        for i, k in enumerate(self.knobs):
            if rng.random() < rate:
                alternatives = [
                    j for j in range(len(k.values)) if j != genome[i]
                ]
                out[i] = rng.choice(alternatives)
        return tuple(out)

    def crossover(self, a: Genome, b: Genome, rng) -> Genome:
        """Uniform crossover: each gene from either parent with p=0.5."""
        self._check(a)
        self._check(b)
        return tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))

    # -- reference designs ------------------------------------------------

    def reference_genomes(self) -> List[Genome]:
        """Anchor designs: every mechanism at default provisioning, pinned
        to the highest-injection workload (the last ``gpu`` value — spaces
        list workloads low to high).

        These are always simulated by the hybrid search, so the frontier
        manifest always contains the baseline-vs-DR comparison the paper
        makes, whatever the search wandered off to explore.
        """
        genomes: List[Genome] = []
        base = list(self.default_genome())
        if "gpu" in self._by_name:
            i = self._by_name["gpu"]
            base[i] = len(self.knobs[i].values) - 1
        if "mechanism" in self._by_name:
            i = self._by_name["mechanism"]
            for j in range(len(self.knobs[i].values)):
                g = list(base)
                g[i] = j
                genomes.append(tuple(g))
        else:
            genomes.append(tuple(base))
        return genomes

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "mesh": self.mesh,
            "cycles": self.cycles,
            "warmup": self.warmup,
            "size": self.size,
            "knobs": [
                {
                    "name": k.name,
                    "path": k.path,
                    "values": list(k.values),
                    "default": k.values[k.default_index],
                }
                for k in self.knobs
            ],
        }


def _mesh_config(preset: str) -> SystemConfig:
    w, h, g, c, m = MESH_MIXES[preset]
    return SystemConfig(
        mesh_width=w, mesh_height=h, n_gpu=g, n_cpu=c, n_mem=m
    )


# ---------------------------------------------------------------------------
# named demo spaces
# ---------------------------------------------------------------------------


def _workload_knob() -> Knob:
    # injection ladder, low -> high (NN light, HS mid, SC clogging-heavy)
    return Knob("gpu", ("NN", "HS", "SC"), "gpu", default="SC")


def _provisioning_knobs() -> Tuple[Knob, ...]:
    return (
        Knob("vcs_per_port", (2, 4), "noc.vcs_per_port", default=2),
        Knob("vc_depth_flits", (2, 4, 8), "noc.vc_depth_flits", default=4),
        Knob(
            "mem_injection_buffer_flits",
            (18, 36, 72),
            "noc.mem_injection_buffer_flits",
            default=36,
        ),
    )


def _delegation_knobs() -> Tuple[Knob, ...]:
    return (
        Knob(
            "only_when_blocked",
            (True, False),
            "delegation.only_when_blocked",
            default=True,
        ),
        Knob(
            "max_delegations_per_cycle",
            (1, 2, 4),
            "delegation.max_delegations_per_cycle",
            default=2,
        ),
    )


def mesh4x4_space() -> SearchSpace:
    """The 16-node CI-scale demo space (648 genomes)."""
    return SearchSpace(
        name="mesh4x4",
        description=(
            "16-node mesh: mechanism, delegation policy, VC/buffer "
            "provisioning and injection level"
        ),
        mesh="4x4",
        cycles=12000,
        warmup=3000,
        knobs=(
            _workload_knob(),
            Knob("mechanism", ("baseline", "dr"), "mechanism", default="baseline"),
            *_delegation_knobs(),
            *_provisioning_knobs(),
        ),
    )


def mesh8x8_space() -> SearchSpace:
    """The paper-scale space: Table I system plus topology/bandwidth."""
    return SearchSpace(
        name="mesh8x8",
        description=(
            "64-node system: mechanism, delegation policy, topology, "
            "bandwidth, VC/buffer provisioning and injection level"
        ),
        mesh="8x8",
        cycles=3000,
        warmup=2000,
        knobs=(
            _workload_knob(),
            Knob(
                "mechanism", ("baseline", "dr", "rp"), "mechanism",
                default="baseline",
            ),
            *_delegation_knobs(),
            Knob(
                "topology",
                (Topology.MESH, Topology.FLATTENED_BUTTERFLY),
                "noc.topology",
                default=Topology.MESH,
            ),
            Knob(
                "bandwidth_factor",
                (1.0, 2.0),
                "noc.bandwidth_factor",
                default=1.0,
            ),
            *_provisioning_knobs(),
        ),
    )


def full_space() -> SearchSpace:
    """Both mesh sizes in one space (mesh size becomes a searched knob)."""
    return SearchSpace(
        name="full",
        description="mesh4x4 + mesh8x8 union with topology and bandwidth",
        mesh="8x8",
        cycles=6000,
        warmup=2000,
        knobs=(
            Knob("mesh", ("4x4", "8x8"), "mesh", default="8x8"),
            _workload_knob(),
            Knob("mechanism", ("baseline", "dr"), "mechanism", default="baseline"),
            *_delegation_knobs(),
            Knob(
                "topology",
                (Topology.MESH, Topology.FLATTENED_BUTTERFLY),
                "noc.topology",
                default=Topology.MESH,
            ),
            Knob(
                "bandwidth_factor",
                (1.0, 2.0),
                "noc.bandwidth_factor",
                default=1.0,
            ),
            *_provisioning_knobs(),
        ),
    )


SPACES = {
    "mesh4x4": mesh4x4_space,
    "mesh8x8": mesh8x8_space,
    "full": full_space,
}


def demo_space(name: str) -> SearchSpace:
    """Resolve a named demo space (``mesh4x4``, ``mesh8x8``, ``full``)."""
    try:
        return SPACES[name]()
    except KeyError:
        raise ValueError(
            f"unknown space {name!r}; choose from {sorted(SPACES)}"
        ) from None
