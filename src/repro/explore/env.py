"""Gym-style environment over the simulator + surrogate.

:class:`ExploreEnv` is the evaluation substrate the search algorithms
drive.  The interface follows the classic gym contract —

* **action**: a genome of the environment's :class:`SearchSpace`,
* **observation**: the candidate's metrics (objective vector, saturation
  assessment, and — when the step is simulated with telemetry — the
  stall-class shares from ``repro.telemetry``'s attribution),
* **reward**: the hypervolume gained by the episode's running frontier,
  so reward accrues exactly when the agent finds designs that push the
  frontier out, and repeat/dominated visits earn nothing.

Evaluation is two-tier, mirroring the hybrid sweeps of ``repro.sweep``:
``evaluate()`` scores a genome with the analytical surrogate
(milliseconds, memoised by config hash so inert-gene duplicates are
free), while ``simulate()`` runs the cycle-level simulator for ground
truth.  The search layer (:mod:`repro.explore.search`) batches its
simulations through ``SweepRunner`` instead so they land in the shared
result cache; ``ExploreEnv.simulate`` is the interactive, single-point
path and the only one that can attach stall observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.explore.objectives import (
    OBJECTIVE_NAMES,
    SENSES,
    from_prediction,
    from_result,
)
from repro.explore.pareto import (
    FrontierPoint,
    ParetoFrontier,
    default_reference,
    hypervolume,
)
from repro.explore.space import Genome, SearchSpace, demo_space
from repro.sweep.jobs import JobSpec


@dataclass
class EvalRecord:
    """One evaluated design: surrogate score, optional simulated truth."""

    genome: Genome
    values: Dict[str, Any]
    config_hash: str
    job_key: str
    gpu: str
    cpu: str
    mechanism: str
    #: surrogate objective vector (always present).
    objectives: Dict[str, float]
    demand_rho: float = 0.0
    saturated: bool = False
    bottleneck: str = ""
    #: simulated objective vector, once the candidate is promoted.
    sim_objectives: Optional[Dict[str, float]] = None
    sim_metrics: Dict[str, float] = field(default_factory=dict)
    cached: bool = False

    @property
    def source(self) -> str:
        return "simulated" if self.sim_objectives is not None else "surrogate"

    @property
    def final_objectives(self) -> Dict[str, float]:
        return self.sim_objectives if self.sim_objectives is not None else self.objectives

    def frontier_point(self) -> FrontierPoint:
        return FrontierPoint(
            config_hash=self.config_hash,
            gpu=self.gpu,
            cpu=self.cpu,
            mechanism=self.mechanism,
            values=dict(self.values),
            objectives=dict(self.final_objectives),
            source=self.source,
            job_key=self.job_key if self.source == "simulated" else None,
            metrics=dict(self.sim_metrics)
            if self.source == "simulated"
            else {"demand_rho": round(self.demand_rho, 4)},
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "genome": list(self.genome),
            "values": dict(self.values),
            "config_hash": self.config_hash,
            "job_key": self.job_key,
            "gpu": self.gpu,
            "cpu": self.cpu,
            "mechanism": self.mechanism,
            "source": self.source,
            "objectives": {k: round(v, 6) for k, v in self.objectives.items()},
            "sim_objectives": (
                {k: round(v, 6) for k, v in self.sim_objectives.items()}
                if self.sim_objectives is not None
                else None
            ),
            "demand_rho": round(self.demand_rho, 4),
            "saturated": self.saturated,
            "bottleneck": self.bottleneck,
            "cached": self.cached,
        }


class ExploreEnv:
    """Design-space environment; actions are genomes, reward is frontier
    hypervolume gain."""

    def __init__(
        self,
        space: Union[str, SearchSpace],
        *,
        cycles: Optional[int] = None,
        warmup: Optional[int] = None,
        budget: Optional[int] = None,
        observe_stalls: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.space = demo_space(space) if isinstance(space, str) else space
        self.cycles = self.space.cycles if cycles is None else cycles
        self.warmup = self.space.warmup if warmup is None else warmup
        #: simulation engine ground-truth promotions run on (None:
        #: $REPRO_BACKEND / object — see repro.sim.engines)
        self.backend = backend
        #: episode ends after this many *unique* surrogate evaluations.
        self.budget = budget
        #: simulate() runs with telemetry + stall attribution enabled so
        #: observations carry stall-class shares.  Telemetry is excluded
        #: from sweep cache keys, so this never forks cache entries.
        self.observe_stalls = observe_stalls
        self._memo: Dict[Tuple[str, str], EvalRecord] = {}
        self._frontier = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
        self._seen_vectors: List[Tuple[float, ...]] = []
        self._hv = 0.0
        self.evaluations = 0
        self.steps = 0

    # -- evaluation -------------------------------------------------------

    def spec(self, genome: Genome) -> JobSpec:
        """The content-addressed sweep job for a genome.

        Built exactly like an ordinary ``repro.sweep`` job, so explore
        simulations share cache entries with sweeps and validations of
        the same configuration.
        """
        cfg, gpu, cpu = self.space.decode(genome)
        return JobSpec.make(
            cfg,
            gpu,
            cpu,
            cycles=self.cycles,
            warmup=self.warmup,
            label=(
                "explore",
                self.space.name,
                cfg.mechanism.value,
                gpu,
                cfg.config_hash()[:8],
            ),
            backend=self.backend,
        )

    def evaluate(self, genome: Genome) -> EvalRecord:
        """Surrogate-score a genome (memoised by decoded config hash)."""
        from repro.model.compose import predict

        cfg, gpu, cpu = self.space.decode(genome)
        key = (cfg.config_hash(), gpu)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        pred = predict(cfg, gpu, cpu)
        record = EvalRecord(
            genome=tuple(genome),
            values=self.space.values(genome),
            config_hash=key[0],
            job_key=self.spec(genome).key(),
            gpu=gpu,
            cpu=cpu,
            mechanism=cfg.mechanism.value,
            objectives=from_prediction(cfg, pred),
            demand_rho=pred.demand_rho,
            saturated=pred.saturated,
            bottleneck=pred.bottleneck,
        )
        self._memo[key] = record
        self.evaluations += 1
        return record

    def simulate(self, genome: Genome) -> EvalRecord:
        """Ground-truth a genome with one cycle-level simulation.

        With ``observe_stalls`` the run carries telemetry + stall
        attribution, and the record's ``sim_metrics`` gains
        ``stall_share.<class>`` entries for the observation.
        """
        from repro.api import simulate as _simulate
        from repro.sweep.runner import stall_shares

        record = self.evaluate(genome)
        if record.sim_objectives is not None:
            return record
        cfg, gpu, cpu = self.space.decode(genome)
        if self.observe_stalls:
            cfg.telemetry.enabled = True
            cfg.telemetry.mode = "full"
            cfg.telemetry.stall_attribution = True
        result = _simulate(
            cfg, gpu, cpu=cpu, cycles=self.cycles, warmup=self.warmup
        )
        record.sim_objectives = from_result(cfg, result)
        record.sim_metrics = {
            "cpu_latency_avg": result.cpu_latency_avg,
            "gpu_latency_p95": result.gpu_latency_p95,
            "mem_blocking_rate": result.mem_blocking_rate,
        }
        for cls, share in stall_shares(result.stall_breakdown).items():
            record.sim_metrics[f"stall_share.{cls}"] = share
        return record

    # -- gym surface ------------------------------------------------------

    def reset(self, seed: Optional[int] = None) -> Dict[str, Any]:
        """Clear episode state; returns the default design's observation.

        ``seed`` is accepted for gym parity; the environment itself is
        deterministic (all stochasticity lives in the search policy).
        """
        del seed
        self._frontier = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
        self._seen_vectors = []
        self._hv = 0.0
        self.steps = 0
        record = self.evaluate(self.space.default_genome())
        self._observe_frontier(record)
        return self.observation(record)

    def step(
        self, action: Genome, *, simulate: bool = False
    ) -> Tuple[Dict[str, Any], float, bool, Dict[str, Any]]:
        """Evaluate one design; returns (observation, reward, done, info)."""
        record = self.simulate(action) if simulate else self.evaluate(action)
        reward = self._observe_frontier(record)
        self.steps += 1
        done = self.budget is not None and self.evaluations >= self.budget
        info = {
            "record": record,
            "frontier_size": len(self._frontier),
            "hypervolume": self._hv,
            "evaluations": self.evaluations,
        }
        return self.observation(record), reward, done, info

    def observation(self, record: EvalRecord) -> Dict[str, Any]:
        obs = {
            "objectives": dict(record.final_objectives),
            "source": record.source,
            "demand_rho": record.demand_rho,
            "saturated": record.saturated,
            "bottleneck": record.bottleneck,
            "stall_shares": {
                k.split(".", 1)[1]: v
                for k, v in record.sim_metrics.items()
                if k.startswith("stall_share.")
            },
        }
        return obs

    @property
    def frontier(self) -> ParetoFrontier:
        return self._frontier

    def _observe_frontier(self, record: EvalRecord) -> float:
        """Fold a record into the running frontier; return the hypervolume
        gained.

        The reference point is the running nadir (plus margin) over every
        objective vector seen this episode, so the reward scale adapts to
        the region the search actually visits while staying deterministic
        for a deterministic action stream.  Both the before- and
        after-insert frontiers are scored at the *current* reference, so
        the gain is never negative: a step that moves the reference out
        without improving the frontier earns exactly zero.
        """
        vec = tuple(
            float(record.final_objectives[n]) for n in OBJECTIVE_NAMES
        )
        self._seen_vectors.append(vec)
        before = self._frontier.vectors()
        self._frontier.insert(record.frontier_point())
        reference = default_reference(self._seen_vectors, SENSES)
        prev = hypervolume(before, reference, SENSES)
        hv = hypervolume(self._frontier.vectors(), reference, SENSES)
        self._hv = hv
        return hv - prev
